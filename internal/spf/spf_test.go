package spf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// diamond builds the four-node diamond 0->{1,2}->3 with a direct long
// path 0->3, all bidirectional.
//
//	    1
//	  /   \
//	0       3
//	  \   /
//	    2
func diamond() *graph.Graph {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 500, 5) // links 0,1
	b.AddEdge(0, 2, 500, 5) // links 2,3
	b.AddEdge(1, 3, 500, 5) // links 4,5
	b.AddEdge(2, 3, 500, 5) // links 6,7
	return b.MustBuild()
}

func equalWeights(g *graph.Graph, v int32) []int32 {
	w := make([]int32, g.NumLinks())
	for i := range w {
		w[i] = v
	}
	return w
}

func TestRunDistances(t *testing.T) {
	g := diamond()
	ws := NewWorkspace(g)
	ws.Run(g, equalWeights(g, 1), 3, nil)
	want := map[int]int64{0: 2, 1: 1, 2: 1, 3: 0}
	for v, d := range want {
		if ws.Dist(v) != d {
			t.Errorf("dist[%d] = %d, want %d", v, ws.Dist(v), d)
		}
	}
}

func TestRunRespectsWeights(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	// Make the upper path (via node 1) expensive.
	w[0], w[4] = 10, 10
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	if ws.Dist(0) != 2 {
		t.Errorf("dist[0] = %d, want 2 via lower path", ws.Dist(0))
	}
	if ws.OnDAG(g, w, 0, nil) {
		t.Error("expensive link 0->1 must not be on the DAG")
	}
	if !ws.OnDAG(g, w, 2, nil) {
		t.Error("link 0->2 must be on the DAG")
	}
}

func TestRunWithMask(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	m.FailLink(2) // 0->2 down
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, m)
	if ws.Dist(0) != 2 {
		t.Errorf("dist[0] = %d, want 2 via node 1", ws.Dist(0))
	}
	if ws.OnDAG(g, w, 2, m) {
		t.Error("dead link cannot be on DAG")
	}
	// Cut both paths: node 0 becomes disconnected from 3.
	m.FailLink(0)
	ws.Run(g, w, 3, m)
	if ws.Reached(0) {
		t.Error("node 0 should be unreachable with both out-links down")
	}
	if !ws.Reached(1) {
		t.Error("node 1 must still reach 3")
	}
}

func TestDeadDestination(t *testing.T) {
	g := diamond()
	m := graph.NewMask(g)
	m.FailNode(3)
	ws := NewWorkspace(g)
	ws.Run(g, equalWeights(g, 1), 3, m)
	for v := 0; v < 4; v++ {
		if ws.Reached(v) {
			t.Errorf("node %d reached a dead destination", v)
		}
	}
}

func TestECMPLoadSplit(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	loads := make([]float64, g.NumLinks())
	dem := []float64{10, 0, 0, 0}
	dropped := ws.AccumulateLoads(g, w, dem, nil, loads)
	if dropped != 0 {
		t.Fatalf("dropped = %g, want 0", dropped)
	}
	// Two equal-cost paths: each carries 5.
	for _, li := range []int{0, 2, 4, 6} {
		if math.Abs(loads[li]-5) > 1e-12 {
			t.Errorf("load[%d] = %g, want 5", li, loads[li])
		}
	}
	// Reverse-direction links carry nothing.
	for _, li := range []int{1, 3, 5, 7} {
		if loads[li] != 0 {
			t.Errorf("load[%d] = %g, want 0", li, loads[li])
		}
	}
}

func TestLoadsAggregateTransitTraffic(t *testing.T) {
	// Chain 0-1-2: demand from 0 and from 1 both cross link 1->2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 500, 1) // links 0,1
	b.AddEdge(1, 2, 500, 1) // links 2,3
	g := b.MustBuild()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 2, nil)
	loads := make([]float64, g.NumLinks())
	ws.AccumulateLoads(g, w, []float64{7, 3, 0}, nil, loads)
	if loads[0] != 7 {
		t.Errorf("load[0->1] = %g, want 7", loads[0])
	}
	if loads[2] != 10 {
		t.Errorf("load[1->2] = %g, want 10", loads[2])
	}
}

func TestDroppedDemand(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	m.FailLink(0)
	m.FailLink(2) // node 0 cut off from 3
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, m)
	loads := make([]float64, g.NumLinks())
	dropped := ws.AccumulateLoads(g, w, []float64{4, 1, 1, 0}, m, loads)
	if dropped != 4 {
		t.Errorf("dropped = %g, want 4", dropped)
	}
}

func TestWorstAndMeanDelays(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	linkDelay := make([]float64, g.NumLinks())
	for i := range linkDelay {
		linkDelay[i] = 1
	}
	linkDelay[4] = 9 // 1->3 slow: upper path total 10, lower total 2

	worst := make([]float64, 4)
	ws.WorstDelays(g, w, linkDelay, nil, worst)
	if worst[0] != 10 {
		t.Errorf("worst[0] = %g, want 10", worst[0])
	}
	if worst[3] != 0 {
		t.Errorf("worst[dest] = %g, want 0", worst[3])
	}

	mean := make([]float64, 4)
	ws.MeanDelays(g, w, linkDelay, nil, mean)
	// Upper: 1+9=10, lower: 1+1=2, even split -> 6.
	if math.Abs(mean[0]-6) > 1e-12 {
		t.Errorf("mean[0] = %g, want 6", mean[0])
	}
}

func TestDelaysUnreachable(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	m.FailLink(0)
	m.FailLink(2)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, m)
	out := make([]float64, 4)
	ws.WorstDelays(g, w, make([]float64, g.NumLinks()), m, out)
	if out[0] < InfDelay {
		t.Errorf("unreachable source should have InfDelay, got %g", out[0])
	}
}

func TestPathTo(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	w[0] = 5 // push traffic to lower path
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	path := ws.PathTo(g, w, 0, nil)
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if g.Link(path[0]).From != 0 || g.Link(path[len(path)-1]).To != 3 {
		t.Errorf("path endpoints wrong: %v", path)
	}
	var sum int64
	for _, li := range path {
		sum += int64(w[li])
	}
	if sum != ws.Dist(0) {
		t.Errorf("path weight %d != dist %d", sum, ws.Dist(0))
	}
}

func TestHopCounts(t *testing.T) {
	g := diamond()
	ws := NewWorkspace(g)
	out := make([]float64, 4)
	ws.HopCounts(g, 3, nil, UnitWeights(g), out)
	if out[0] != 2 || out[1] != 1 || out[3] != 0 {
		t.Errorf("hop counts = %v", out)
	}
}

// randGraph builds a connected random graph with random weights for
// property tests.
func randGraph(r *rand.Rand) (*graph.Graph, []int32) {
	n := 4 + r.Intn(12)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i), 500, 1+r.Float64()*10)
	}
	extra := r.Intn(2 * n)
	for k := 0; k < extra; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.AddEdge(u, v, 500, 1+r.Float64()*10)
		}
	}
	g := b.MustBuild()
	w := make([]int32, g.NumLinks())
	for i := range w {
		w[i] = int32(1 + r.Intn(20))
	}
	return g, w
}

// bellmanFord is the oracle for Dijkstra correctness.
func bellmanFord(g *graph.Graph, w []int32, dest int) []int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[dest] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for li, l := range g.Links() {
			if dist[l.To] < Inf && dist[l.To]+int64(w[li]) < dist[l.From] {
				dist[l.From] = dist[l.To] + int64(w[li])
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestQuickDijkstraMatchesBellmanFord(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		oracle := bellmanFord(g, w, dest)
		for v := 0; v < g.NumNodes(); v++ {
			if ws.Dist(v) != oracle[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickFlowConservation(t *testing.T) {
	// Node balance: for every transit node, inflow + own demand = outflow.
	// Globally: flow into the destination equals total routed demand.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		n := g.NumNodes()
		dest := r.Intn(n)
		dem := make([]float64, n)
		var total float64
		for i := range dem {
			if i != dest {
				dem[i] = r.Float64() * 10
				total += dem[i]
			}
		}
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		loads := make([]float64, g.NumLinks())
		dropped := ws.AccumulateLoads(g, w, dem, nil, loads)
		if dropped != 0 {
			return false // connected by construction
		}
		const eps = 1e-9
		for v := 0; v < n; v++ {
			var in, out float64
			for _, li := range g.InLinks(v) {
				in += loads[li]
			}
			for _, li := range g.OutLinks(v) {
				out += loads[li]
			}
			if v == dest {
				if math.Abs(in-total) > eps*math.Max(1, total) {
					return false
				}
				if out != 0 {
					return false
				}
			} else if math.Abs(in+dem[v]-out) > eps*math.Max(1, total) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickLoadsOnlyOnDAGLinks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		dem := make([]float64, g.NumNodes())
		for i := range dem {
			if i != dest {
				dem[i] = 1
			}
		}
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		loads := make([]float64, g.NumLinks())
		ws.AccumulateLoads(g, w, dem, nil, loads)
		for li := range loads {
			if loads[li] > 0 && !ws.OnDAG(g, w, li, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickWorstDelayBoundsMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		linkDelay := make([]float64, g.NumLinks())
		for i := range linkDelay {
			linkDelay[i] = r.Float64() * 20
		}
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		worst := make([]float64, g.NumNodes())
		mean := make([]float64, g.NumNodes())
		ws.WorstDelays(g, w, linkDelay, nil, worst)
		ws.MeanDelays(g, w, linkDelay, nil, mean)
		for v := range worst {
			if mean[v] > worst[v]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWorkspaceReuseAcrossDestinations(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	d3 := ws.Dist(0)
	ws.Run(g, w, 0, nil)
	if ws.Dist(3) != d3 {
		t.Errorf("symmetric graph: dist should match after destination swap")
	}
	if ws.Dist(0) != 0 {
		t.Errorf("dist[dest] = %d, want 0", ws.Dist(0))
	}
}

func BenchmarkDijkstra30Nodes(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bld := graph.NewBuilder(30)
	for i := 1; i < 30; i++ {
		bld.AddEdge(i, r.Intn(i), 500, 5)
	}
	for k := 0; k < 60; k++ {
		u, v := r.Intn(30), r.Intn(30)
		if u != v {
			bld.AddEdge(u, v, 500, 5)
		}
	}
	g := bld.MustBuild()
	w := make([]int32, g.NumLinks())
	for i := range w {
		w[i] = int32(1 + r.Intn(20))
	}
	ws := NewWorkspace(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Run(g, w, i%30, nil)
	}
}
