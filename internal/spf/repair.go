package spf

// Dynamic shortest-path repair in the style of Ramalingam–Reps: after a
// single-link weight change or up/down toggle, update the cached reverse
// SPF of one destination by recomputing only the vertices whose distance
// actually changes, instead of re-running Dijkstra from scratch.
//
// Invariants the repair maintains — the same three every consumer of a
// Run's outputs relies on:
//
//  1. dist[v] is the exact shortest distance from v to the destination
//     over alive links under the current weights (Inf if unreachable).
//  2. order lists exactly the reachable vertices in ascending distance.
//     Equal-distance vertices may appear in any relative order: weights
//     are >= 1, so no shortest-path DAG edge connects a distance tie,
//     and every downstream pass (the pull-based load accumulation, the
//     delay DPs) is a function of the distances alone. A repaired order
//     therefore yields bit-identical loads and delays to a fresh Run's
//     order even though the two orders may permute ties differently.
//  3. DAG membership is derived, never stored: link (u,v) is on the DAG
//     iff dist[u] == w(u,v) + dist[v] and the link is alive. Repairing
//     distances repairs membership for free.
//
// The algorithm splits on the direction of the change:
//
// Decrease (including restoring a dead link): the only distances that
// can improve are those with a new shortest path through the changed
// link. If newW + dist[head] >= dist[tail] nothing changes; otherwise a
// plain Dijkstra seeded at the tail propagates the improvement through
// in-links. Visited vertices are exactly those whose distance drops.
//
// Increase (including failing a link): distances can only grow, and only
// for vertices all of whose shortest paths crossed the changed link. If
// the link was not tight (dist[tail] != oldW + dist[head]) nothing
// changes. Otherwise:
//
//   - Phase A identifies the affected set with a min-heap keyed by OLD
//     distance, seeded with the tail. A popped candidate is affected iff
//     it has no alive tight out-link to an unaffected vertex; each newly
//     affected vertex enqueues its tight in-neighbors. Tight links
//     strictly decrease distance, so candidates pop in ascending old
//     distance and every vertex's smaller-distance tight successors have
//     final membership when it is tested — the property the one-pass
//     test depends on.
//   - Phase B sets the affected distances to Inf, computes each affected
//     vertex's best candidate through unaffected neighbors, and runs a
//     Dijkstra restricted to the affected set. Vertices left at Inf are
//     the ones the change disconnected.
//
// Both paths finish by merging the changed vertices (collected in
// settle order, i.e. ascending new distance) into the untouched
// remainder of the old order — O(n) with a tiny constant, against the
// O((n+m) log n) Dijkstra it replaces.
//
// Callers fall back to a full Run when no pre-change snapshot exists
// (session Init / demand rebases) or when more than one link changed at
// once; Repair itself degrades to a no-op when the change provably
// cannot move any distance.

import (
	"math"

	"repro/internal/graph"
)

// Repair updates the workspace's current SPF state (the last Run, or a
// Restored snapshot) for a change of alive link li's weight from oldW to
// newW. w must already hold the new weights (w[li] == newW) and mask the
// current topology. It reports whether any distance changed; when it
// returns false, distances and order are untouched (DAG membership may
// still have changed, which is derived state).
func (ws *Workspace) Repair(g *graph.Graph, w []int32, li int, oldW, newW int32, mask *graph.Mask) bool {
	if !mask.LinkAlive(li) {
		return false // dead links carry nothing under either weight
	}
	return ws.repair(g, w, li, int64(oldW), int64(newW), mask)
}

// RepairLinkDown updates the workspace's current SPF state after link li
// went down. mask must already mark the link dead; w is unchanged. It is
// the newW -> Inf limit of Repair.
func (ws *Workspace) RepairLinkDown(g *graph.Graph, w []int32, li int, mask *graph.Mask) bool {
	return ws.repair(g, w, li, int64(w[li]), Inf, mask)
}

// RepairLinkUp updates the workspace's current SPF state after link li
// came back up. mask must already mark the link alive; if an endpoint
// node is still down the link stays dead and nothing changes. It is the
// oldW -> Inf limit of Repair, reversed.
func (ws *Workspace) RepairLinkUp(g *graph.Graph, w []int32, li int, mask *graph.Mask) bool {
	if !mask.LinkAlive(li) {
		return false
	}
	return ws.repair(g, w, li, Inf, int64(w[li]), mask)
}

// repair is the shared core. oldEff/newEff are the effective weights of
// link li before and after the event, with Inf encoding "down".
func (ws *Workspace) repair(g *graph.Graph, w []int32, li int, oldEff, newEff int64, mask *graph.Mask) bool {
	if g != ws.g {
		panic("spf: Workspace used with a graph other than the one it was created for")
	}
	m := met.Get()
	if oldEff == newEff {
		ws.stats.Noop++
		if m != nil {
			m.repairNoop.Inc()
		}
		return false
	}
	tail, head := ws.lfrom[li], ws.lto[li]
	dv := ws.dist[head]
	if dv >= Inf {
		// The link leads nowhere near this destination (including the
		// dead-destination case where every distance is Inf).
		ws.stats.Noop++
		if m != nil {
			m.repairNoop.Inc()
		}
		return false
	}
	if newEff < oldEff {
		changed := ws.repairDecrease(g, w, tail, dv+newEff, mask)
		ws.stats.Decrease++
		if changed {
			ws.stats.ChangedNodes += len(ws.chgSorted)
		}
		if m != nil {
			m.repairDecrease.Inc()
			if changed {
				m.changedNodes.Observe(float64(len(ws.chgSorted)))
			}
		}
		return changed
	}
	changed := ws.repairIncrease(g, w, tail, dv+oldEff, mask)
	ws.stats.Increase++
	if changed {
		ws.stats.ChangedNodes += len(ws.affList)
	}
	if m != nil {
		m.repairIncrease.Inc()
		if changed {
			m.changedNodes.Observe(float64(len(ws.affList)))
		}
	}
	return changed
}

// repairDecrease handles a weight decrease or link restoration: nd is
// the new candidate distance of the changed link's tail through it.
func (ws *Workspace) repairDecrease(g *graph.Graph, w []int32, tail int32, nd int64, mask *graph.Mask) bool {
	if nd >= ws.dist[tail] {
		return false // at best a distance tie: membership-only change
	}
	epoch := ws.nextRepairEpoch()
	ws.heap = ws.heap[:0]
	ws.chgSorted = ws.chgSorted[:0]
	ws.dist[tail] = nd
	ws.aMark[tail] = epoch
	ws.heapPush(heapEntry{nd, tail})
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		if e.dist != ws.dist[e.node] {
			continue // stale entry
		}
		ws.chgSorted = append(ws.chgSorted, e.node) // settles in ascending new distance
		for _, lj := range g.InLinks(int(e.node)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			y := ws.lfrom[lj]
			if nd2 := e.dist + int64(w[lj]); nd2 < ws.dist[y] {
				ws.dist[y] = nd2
				ws.aMark[y] = epoch
				ws.heapPush(heapEntry{nd2, y})
			}
		}
	}
	ws.mergeOrder(epoch)
	return true
}

// repairIncrease handles a weight increase or link failure: du is the
// distance the changed link offered its tail before the event.
func (ws *Workspace) repairIncrease(g *graph.Graph, w []int32, tail int32, du int64, mask *graph.Mask) bool {
	if ws.dist[tail] != du {
		return false // the link was not tight: it carried no shortest path
	}

	// Phase A: identify the affected set in ascending old-distance order.
	epoch := ws.nextRepairEpoch()
	ws.heap = ws.heap[:0]
	ws.affList = ws.affList[:0]
	ws.qMark[tail] = epoch
	ws.heapPush(heapEntry{du, tail})
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		x := e.node
		dx := ws.dist[x]
		hasAlt := false
		for _, lj := range g.OutLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			z := ws.lto[lj]
			if ws.aMark[z] == epoch {
				continue
			}
			if dz := ws.dist[z]; dz < Inf && dx == dz+int64(w[lj]) {
				hasAlt = true // a surviving tight out-link: distance holds
				break
			}
		}
		if hasAlt {
			continue
		}
		ws.aMark[x] = epoch
		ws.affList = append(ws.affList, x)
		for _, lj := range g.InLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			y := ws.lfrom[lj]
			if ws.qMark[y] == epoch || ws.aMark[y] == epoch {
				continue
			}
			if dy := ws.dist[y]; dy < Inf && dy == dx+int64(w[lj]) {
				ws.qMark[y] = epoch
				ws.heapPush(heapEntry{dy, y})
			}
		}
	}
	if len(ws.affList) == 0 {
		// The tail kept another tight out-link: an ECMP membership change
		// only, every distance intact.
		return false
	}

	// Phase B: recompute the affected set against the unaffected rim.
	for _, x := range ws.affList {
		ws.dist[x] = Inf
	}
	ws.heap = ws.heap[:0]
	for _, x := range ws.affList {
		best := Inf
		for _, lj := range g.OutLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			dz := ws.dist[ws.lto[lj]] // affected neighbors sit at Inf and drop out
			if dz >= Inf {
				continue
			}
			if c := dz + int64(w[lj]); c < best {
				best = c
			}
		}
		ws.cand[x] = best
		if best < Inf {
			ws.heapPush(heapEntry{best, x})
		}
	}
	ws.chgSorted = ws.chgSorted[:0]
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		x := e.node
		if ws.dist[x] < Inf || e.dist != ws.cand[x] {
			continue // settled or stale
		}
		ws.dist[x] = e.dist
		ws.chgSorted = append(ws.chgSorted, x)
		for _, lj := range g.InLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			y := ws.lfrom[lj]
			if ws.aMark[y] != epoch || ws.dist[y] < Inf {
				continue
			}
			if c := e.dist + int64(w[lj]); c < ws.cand[y] {
				ws.cand[y] = c
				ws.heapPush(heapEntry{c, y})
			}
		}
	}
	// Affected vertices still at Inf were disconnected by the change;
	// mergeOrder drops them from the settled order.
	ws.mergeOrder(epoch)
	return true
}

// nextRepairEpoch advances the mark epoch, clearing the mark arrays on
// the (every ~2^31 repairs) wraparound so stale marks from a previous
// cycle can never collide with the current epoch on a long-lived
// workspace.
func (ws *Workspace) nextRepairEpoch() int32 {
	if ws.repEpoch == math.MaxInt32 {
		clear(ws.aMark)
		clear(ws.qMark)
		ws.repEpoch = 0
	}
	ws.repEpoch++
	return ws.repEpoch
}

// mergeOrder rebuilds the settled order after a repair: the old order
// minus the changed vertices (aMark == epoch) is still sorted by
// distance, as is chgSorted (settle order of the repair), so one merge
// pass restores invariant (2). Ties between changed and unchanged
// vertices may land either way; no consumer distinguishes them.
func (ws *Workspace) mergeOrder(epoch int32) {
	old := ws.order
	merged := ws.order2[:0]
	cs := ws.chgSorted
	ci := 0
	for _, v := range old {
		if ws.aMark[v] == epoch {
			continue // re-inserted from cs below, or dropped if now at Inf
		}
		dv := ws.dist[v]
		for ci < len(cs) && ws.dist[cs[ci]] <= dv {
			merged = append(merged, cs[ci])
			ci++
		}
		merged = append(merged, v)
	}
	merged = append(merged, cs[ci:]...)
	ws.order = merged
	ws.order2 = old[:0]
}

// Repair applies a single-link weight change (oldW -> newW on alive link
// li) to this snapshot in place, using ws for scratch: the
// Ramalingam–Reps update of Workspace.Repair without the Restore/Save
// round trip. w must already hold the new weights. The workspace's own
// last-Run outputs are preserved. Reports whether any distance changed.
func (s *State) Repair(ws *Workspace, g *graph.Graph, w []int32, li int, oldW, newW int32, mask *graph.Mask) bool {
	if !mask.LinkAlive(li) {
		return false
	}
	return s.repairSwapped(ws, func() bool {
		return ws.repair(g, w, li, int64(oldW), int64(newW), mask)
	})
}

// RepairLink applies a link-up/down toggle of link li to this snapshot
// in place, the toggle analogue of State.Repair. mask must already
// reflect the new link state.
func (s *State) RepairLink(ws *Workspace, g *graph.Graph, w []int32, li int, up bool, mask *graph.Mask) bool {
	return s.repairSwapped(ws, func() bool {
		if up {
			return ws.RepairLinkUp(g, w, li, mask)
		}
		return ws.RepairLinkDown(g, w, li, mask)
	})
}

// repairSwapped runs a workspace repair directly on the snapshot's
// backing arrays by swapping them into the workspace for the duration —
// no copying; the arrays just trade owners (the merged order may come
// from the workspace's scratch, which then inherits the snapshot's old
// array).
func (s *State) repairSwapped(ws *Workspace, f func() bool) bool {
	ws.dist, s.Dist = s.Dist, ws.dist
	ws.order, s.Order = s.Order, ws.order
	ws.dest, s.Dest = s.Dest, ws.dest
	changed := f()
	ws.dist, s.Dist = s.Dist, ws.dist
	ws.order, s.Order = s.Order, ws.order
	ws.dest, s.Dest = s.Dest, ws.dest
	return changed
}
