package spf

// Multi-link batch repair: apply a set of simultaneous link changes
// (an SRLG trip, a maintenance window, a batched weight move) to one
// cached SPF in a single pass, instead of one classify/repair/merge
// round per link.
//
// The batch is decomposed through an intermediate "mid" state in which
// every changed link carries max(oldEff, newEff):
//
//   - Phase I (increases): going old -> mid only raises weights, so the
//     single-link increase machinery of repair.go generalizes by
//     multi-seeding Phase A with the tails of every tight increased
//     link, keyed by old distance. An increased link itself can never
//     satisfy the surviving-tight-out-link test (old distances obey
//     dist[tail] <= dist[head]+oldEff < dist[head]+midEff), so the
//     one-pass affected-set property is preserved verbatim. Links whose
//     weight decreased keep their OLD weight at mid (an epoch-marked
//     per-link override), and links coming back up stay dead at mid (a
//     second mark), which is what makes the mid state well defined.
//   - Phase II (decreases): going mid -> new only lowers weights, so a
//     multi-source seeded Dijkstra (the decrease path of repair.go with
//     one seed per improving link) finishes the job under the true new
//     weights and mask. Composite improvements — a tail whose candidate
//     drops further when another decreased link lowers its head —
//     propagate through the ordinary relaxation loop.
//
// Each phase finishes with the same O(n) settled-order merge as a
// single-link repair, so invariants (1)-(3) of repair.go hold at the
// mid state and again at the final state. Distances are exact at every
// phase boundary; only order ties may permute, which no consumer
// observes.

import (
	"math"

	"repro/internal/graph"
)

// LinkChange is one link of a batch event: the link's effective weight
// before and after, with Inf encoding "down". A link that failed has
// NewEff == Inf; a link that came back has OldEff == Inf; a weight move
// on an alive link has both finite. Each link may appear at most once
// per batch.
type LinkChange struct {
	Link           int
	OldEff, NewEff int64
}

// RepairBatch updates the workspace's current SPF state (the last Run,
// or a Restored snapshot) for a set of simultaneous link changes. w and
// mask must already reflect the new weights and topology. It reports
// whether any distance changed; when it returns false, distances and
// order are untouched (DAG membership may still have changed, which is
// derived state).
func (ws *Workspace) RepairBatch(g *graph.Graph, w []int32, changes []LinkChange, mask *graph.Mask) bool {
	if g != ws.g {
		panic("spf: Workspace used with a graph other than the one it was created for")
	}
	m := met.Get()
	bep := ws.nextBatchEpoch()
	inc, dec, kept := false, false, 0
	for _, c := range changes {
		if c.OldEff == c.NewEff {
			continue
		}
		li := c.Link
		if c.NewEff > c.OldEff {
			if c.NewEff < Inf && !mask.LinkAlive(li) {
				continue // weight move on a dead link: effectively Inf both sides
			}
			inc = true
		} else {
			if !mask.LinkAlive(li) {
				continue // restored link whose endpoint is still down, or dead-link move
			}
			if c.OldEff >= Inf {
				ws.batchUpMark[li] = bep // newly up: dead at the mid state
			} else {
				ws.batchOld[li] = c.OldEff // decreased: old weight at the mid state
				ws.batchOldMark[li] = bep
			}
			dec = true
		}
		kept++
	}
	ws.stats.Batch++
	if m != nil {
		m.repairBatch.Inc()
		m.batchLinks.Observe(float64(kept))
	}
	if kept == 0 {
		return false
	}
	changed := false
	if inc {
		if ws.batchIncrease(g, w, changes, mask, bep) {
			changed = true
			ws.stats.ChangedNodes += len(ws.affList)
			if m != nil {
				m.changedNodes.Observe(float64(len(ws.affList)))
			}
		}
	}
	if dec {
		if ws.batchDecrease(g, w, changes, mask) {
			changed = true
			ws.stats.ChangedNodes += len(ws.chgSorted)
			if m != nil {
				m.changedNodes.Observe(float64(len(ws.chgSorted)))
			}
		}
	}
	return changed
}

// midW is link lj's effective weight at the batch's mid state.
func (ws *Workspace) midW(lj int32, w []int32, bep int32) int64 {
	if ws.batchOldMark[lj] == bep {
		return ws.batchOld[lj]
	}
	return int64(w[lj])
}

// batchIncrease moves the distances from the old state to the mid state
// (every increased or failed link at its raised weight) with one
// multi-seeded increase repair. Decreased links read their old weight
// and restored links stay dead, so only raises are in effect.
func (ws *Workspace) batchIncrease(g *graph.Graph, w []int32, changes []LinkChange, mask *graph.Mask, bep int32) bool {
	// Phase A: identify the affected set in ascending old-distance order,
	// seeded with the tail of every tight increased link.
	epoch := ws.nextRepairEpoch()
	ws.heap = ws.heap[:0]
	ws.affList = ws.affList[:0]
	for _, c := range changes {
		if c.NewEff <= c.OldEff || c.OldEff >= Inf {
			continue
		}
		if c.NewEff < Inf && !mask.LinkAlive(c.Link) {
			continue
		}
		tail, head := ws.lfrom[c.Link], ws.lto[c.Link]
		dv := ws.dist[head]
		if dv >= Inf || ws.dist[tail] != dv+c.OldEff {
			continue // the link was not tight: it carried no shortest path
		}
		if ws.qMark[tail] != epoch {
			ws.qMark[tail] = epoch
			ws.heapPush(heapEntry{ws.dist[tail], tail})
		}
	}
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		x := e.node
		dx := ws.dist[x]
		hasAlt := false
		for _, lj := range g.OutLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) || ws.batchUpMark[lj] == bep {
				continue
			}
			z := ws.lto[lj]
			if ws.aMark[z] == epoch {
				continue
			}
			if dz := ws.dist[z]; dz < Inf && dx == dz+ws.midW(lj, w, bep) {
				hasAlt = true // a surviving tight out-link: distance holds
				break
			}
		}
		if hasAlt {
			continue
		}
		ws.aMark[x] = epoch
		ws.affList = append(ws.affList, x)
		for _, lj := range g.InLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) || ws.batchUpMark[lj] == bep {
				continue
			}
			y := ws.lfrom[lj]
			if ws.qMark[y] == epoch || ws.aMark[y] == epoch {
				continue
			}
			if dy := ws.dist[y]; dy < Inf && dy == dx+ws.midW(lj, w, bep) {
				ws.qMark[y] = epoch
				ws.heapPush(heapEntry{dy, y})
			}
		}
	}
	if len(ws.affList) == 0 {
		// Every seeded tail kept another tight out-link: ECMP membership
		// changes only, all distances intact.
		return false
	}

	// Phase B: recompute the affected set against the unaffected rim,
	// under mid weights and mid aliveness.
	for _, x := range ws.affList {
		ws.dist[x] = Inf
	}
	ws.heap = ws.heap[:0]
	for _, x := range ws.affList {
		best := Inf
		for _, lj := range g.OutLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) || ws.batchUpMark[lj] == bep {
				continue
			}
			dz := ws.dist[ws.lto[lj]] // affected neighbors sit at Inf and drop out
			if dz >= Inf {
				continue
			}
			if c := dz + ws.midW(lj, w, bep); c < best {
				best = c
			}
		}
		ws.cand[x] = best
		if best < Inf {
			ws.heapPush(heapEntry{best, x})
		}
	}
	ws.chgSorted = ws.chgSorted[:0]
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		x := e.node
		if ws.dist[x] < Inf || e.dist != ws.cand[x] {
			continue // settled or stale
		}
		ws.dist[x] = e.dist
		ws.chgSorted = append(ws.chgSorted, x)
		for _, lj := range g.InLinks(int(x)) {
			if !mask.LinkAlive(int(lj)) || ws.batchUpMark[lj] == bep {
				continue
			}
			y := ws.lfrom[lj]
			if ws.aMark[y] != epoch || ws.dist[y] < Inf {
				continue
			}
			if c := e.dist + ws.midW(lj, w, bep); c < ws.cand[y] {
				ws.cand[y] = c
				ws.heapPush(heapEntry{c, y})
			}
		}
	}
	ws.mergeOrder(epoch)
	return true
}

// batchDecrease moves the distances from the mid state to the new state
// with one multi-source seeded Dijkstra under the true new weights and
// mask: one seed per link whose new weight improves on its mid weight
// (weight decreases and restored links).
func (ws *Workspace) batchDecrease(g *graph.Graph, w []int32, changes []LinkChange, mask *graph.Mask) bool {
	epoch := ws.nextRepairEpoch()
	ws.heap = ws.heap[:0]
	ws.chgSorted = ws.chgSorted[:0]
	any := false
	for _, c := range changes {
		if c.NewEff >= c.OldEff || !mask.LinkAlive(c.Link) {
			continue
		}
		tail, head := ws.lfrom[c.Link], ws.lto[c.Link]
		dv := ws.dist[head]
		if dv >= Inf {
			continue
		}
		if nd := dv + c.NewEff; nd < ws.dist[tail] {
			ws.dist[tail] = nd
			ws.aMark[tail] = epoch
			ws.heapPush(heapEntry{nd, tail})
			any = true
		}
	}
	if !any {
		return false // at best distance ties: membership-only changes
	}
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		if e.dist != ws.dist[e.node] {
			continue // stale entry
		}
		ws.chgSorted = append(ws.chgSorted, e.node) // settles in ascending new distance
		for _, lj := range g.InLinks(int(e.node)) {
			if !mask.LinkAlive(int(lj)) {
				continue
			}
			y := ws.lfrom[lj]
			if nd2 := e.dist + int64(w[lj]); nd2 < ws.dist[y] {
				ws.dist[y] = nd2
				ws.aMark[y] = epoch
				ws.heapPush(heapEntry{nd2, y})
			}
		}
	}
	ws.mergeOrder(epoch)
	return true
}

// nextBatchEpoch advances the per-link batch mark epoch, clearing the
// mark arrays on wraparound like nextRepairEpoch.
func (ws *Workspace) nextBatchEpoch() int32 {
	if ws.batchEpoch == math.MaxInt32 {
		clear(ws.batchOldMark)
		clear(ws.batchUpMark)
		ws.batchEpoch = 0
	}
	ws.batchEpoch++
	return ws.batchEpoch
}

// RepairBatch applies a set of simultaneous link changes to this
// snapshot in place, using ws for scratch: the batch analogue of
// State.Repair/RepairLink. w and mask must already reflect the new
// weights and topology. Reports whether any distance changed.
func (s *State) RepairBatch(ws *Workspace, g *graph.Graph, w []int32, changes []LinkChange, mask *graph.Mask) bool {
	return s.repairSwapped(ws, func() bool {
		return ws.RepairBatch(g, w, changes, mask)
	})
}
