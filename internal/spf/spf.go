package spf

import (
	"math"

	"repro/internal/graph"
)

// Inf is the distance assigned to nodes that cannot reach the
// destination. It is large enough that no real path can reach it, yet far
// from overflowing when weights are added to it.
const Inf int64 = math.MaxInt64 / 4

// InfDelay is returned as the path delay of sources disconnected from the
// destination.
const InfDelay = math.MaxFloat64 / 4

type heapEntry struct {
	dist int64
	node int32
}

// Workspace holds all scratch state for the SPF routines. A Workspace is
// bound to the graph it was created for (it aliases the graph's shared
// endpoint arrays; Run panics on any other graph) and may be reused
// across destinations, weight settings, and failure masks, but not
// across goroutines.
type Workspace struct {
	n int
	g *graph.Graph

	// Outputs of Run, valid until the next Run call.
	dist  []int64 // distance from each node to the destination
	order []int32 // settled nodes in ascending distance order
	dest  int32

	heap   []heapEntry
	flow   []float64
	val    []float64
	lflow  []float64
	dagOut []int32 // scratch for one node's on-DAG out-links
	// lfrom/lto alias the graph's shared endpoint arrays so hot
	// DAG-membership tests avoid copying whole Link structs.
	lfrom, lto []int32

	// Repair scratch (see repair.go). The epoch-marked arrays never need
	// clearing between repairs; cand holds tentative distances for the
	// affected set of an increase repair.
	cand      []int64
	aMark     []int32 // this epoch: node's distance changed (or joined the affected set)
	qMark     []int32 // this epoch: node queued as an affected-set candidate
	repEpoch  int32
	affList   []int32 // affected set of the current increase repair
	chgSorted []int32 // changed nodes, ascending by new distance
	order2    []int32 // scratch for the merged settled order

	// Batch-repair scratch (see batch.go): per-link epoch marks giving
	// O(1) mid-state effective weights during the increase phase of a
	// multi-link repair.
	batchOld     []int64 // old effective weight of a decreased link
	batchOldMark []int32 // this epoch: batchOld[li] overrides w[li]
	batchUpMark  []int32 // this epoch: link newly up (dead at the mid state)
	batchEpoch   int32

	// Cumulative work counters (see stats.go); owners diff snapshots to
	// attribute repair modes to one update.
	stats RepairStats
}

// NewWorkspace returns a Workspace sized for g.
func NewWorkspace(g *graph.Graph) *Workspace {
	n := g.NumNodes()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.OutDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	lfrom, lto := g.LinkEndpoints()
	return &Workspace{
		n:         n,
		g:         g,
		dist:      make([]int64, n),
		order:     make([]int32, 0, n),
		heap:      make([]heapEntry, 0, n*2),
		flow:      make([]float64, n),
		val:       make([]float64, n),
		lflow:     make([]float64, g.NumLinks()),
		dagOut:    make([]int32, maxDeg),
		lfrom:     lfrom,
		lto:       lto,
		cand:      make([]int64, n),
		aMark:     make([]int32, n),
		qMark:     make([]int32, n),
		affList:   make([]int32, 0, n),
		chgSorted: make([]int32, 0, n),
		order2:    make([]int32, 0, n),

		batchOld:     make([]int64, g.NumLinks()),
		batchOldMark: make([]int32, g.NumLinks()),
		batchUpMark:  make([]int32, g.NumLinks()),
	}
}

// Dist returns the distance of node v to the destination of the last Run.
func (ws *Workspace) Dist(v int) int64 { return ws.dist[v] }

// Reached reports whether node v can reach the destination of the last Run.
func (ws *Workspace) Reached(v int) bool { return ws.dist[v] < Inf }

// Run computes shortest distances from every node to dest over alive
// links, using w[l] as the weight of link l. Weights must be positive.
// After Run, the workspace exposes distances, the settled order, and DAG
// queries for this destination.
func (ws *Workspace) Run(g *graph.Graph, w []int32, dest int, mask *graph.Mask) {
	if g != ws.g {
		panic("spf: Workspace used with a graph other than the one it was created for")
	}
	ws.stats.Runs++
	if m := met.Get(); m != nil {
		m.runs.Inc()
	}
	ws.dest = int32(dest)
	for i := range ws.dist {
		ws.dist[i] = Inf
	}
	ws.order = ws.order[:0]
	ws.heap = ws.heap[:0]
	if !mask.NodeAlive(dest) {
		return
	}
	ws.dist[dest] = 0
	ws.heapPush(heapEntry{0, int32(dest)})
	for len(ws.heap) > 0 {
		e := ws.heapPop()
		if e.dist != ws.dist[e.node] {
			continue // stale entry
		}
		ws.order = append(ws.order, e.node)
		for _, li := range g.InLinks(int(e.node)) {
			if !mask.LinkAlive(int(li)) {
				continue
			}
			u := g.Link(int(li)).From
			nd := e.dist + int64(w[li])
			if nd < ws.dist[u] {
				ws.dist[u] = nd
				ws.heapPush(heapEntry{nd, int32(u)})
			}
		}
	}
}

// OnDAG reports whether link li lies on a shortest path to the last Run's
// destination, i.e. whether dist(from) == w(li) + dist(to).
func (ws *Workspace) OnDAG(g *graph.Graph, w []int32, li int, mask *graph.Mask) bool {
	if !mask.LinkAlive(li) {
		return false
	}
	l := g.Link(li)
	dv := ws.dist[l.To]
	return dv < Inf && ws.dist[l.From] == dv+int64(w[li])
}

// AccumulateLoads routes dem[u] units of traffic from every node u to the
// last Run's destination along the ECMP DAG, splitting evenly at each
// node, and adds the per-link loads into loads. It returns the total
// demand dropped because its source cannot reach the destination.
//
// dem is indexed by source node; dem[dest] is ignored.
func (ws *Workspace) AccumulateLoads(g *graph.Graph, w []int32, dem []float64, mask *graph.Mask, loads []float64) (dropped float64) {
	dropped = ws.AccumulateLoadsInto(g, w, dem, mask, ws.lflow)
	for li, f := range ws.lflow {
		loads[li] += f
	}
	return dropped
}

// AccumulateLoadsInto is AccumulateLoads writing this destination's
// per-link traffic shares into contrib (length NumLinks, fully
// overwritten) instead of adding them to a running total, so callers can
// cache one destination's contribution and subtract or re-sum it later.
//
// The accumulation is pull-based: each node's through-flow is assembled
// from its DAG in-links in adjacency order, so the result is a function of
// the distances alone — it does not depend on the order in which Dijkstra
// settled equal-distance nodes (no DAG edge connects distance ties). That
// canonical form is what lets cached SPF snapshots (routing.Session) and
// fresh runs produce bit-identical loads.
func (ws *Workspace) AccumulateLoadsInto(g *graph.Graph, w []int32, dem []float64, mask *graph.Mask, contrib []float64) (dropped float64) {
	clear(contrib)
	for i := range ws.flow {
		ws.flow[i] = 0
	}
	for u, d := range dem {
		if d == 0 || u == int(ws.dest) {
			continue
		}
		if ws.dist[u] >= Inf {
			dropped += d
			continue
		}
		ws.flow[u] = d
	}
	// DAG edges strictly decrease distance (weights are >= 1), so
	// processing nodes in descending settled order makes every DAG
	// in-link's share final before its head node pulls it. Off-DAG
	// in-links hold an exact 0.0 contribution, so no membership test is
	// needed: adding them never changes the (non-negative) sum's bits.
	for i := len(ws.order) - 1; i >= 0; i-- {
		u := ws.order[i]
		f := ws.flow[u]
		for _, li := range g.InLinks(int(u)) {
			f += contrib[li]
		}
		if f == 0 {
			continue
		}
		k := 0
		for _, li := range g.OutLinks(int(u)) {
			if ws.onDAGFast(g, w, li, mask) {
				ws.dagOut[k] = li
				k++
			}
		}
		if k == 0 {
			continue // u is the destination
		}
		share := f / float64(k)
		for _, li := range ws.dagOut[:k] {
			contrib[li] = share
		}
	}
	return dropped
}

// onDAGFast is the hot-loop membership test. The distance checks run
// first: most links fail them, and they are two array reads against the
// mask's (potentially) three.
func (ws *Workspace) onDAGFast(g *graph.Graph, w []int32, li int32, mask *graph.Mask) bool {
	dv := ws.dist[ws.lto[li]]
	if dv >= Inf || ws.dist[ws.lfrom[li]] != dv+int64(w[li]) {
		return false
	}
	return mask.LinkAlive(int(li))
}

// WorstDelays computes, for every source node, the largest total link
// delay over any ECMP path of the last Run's DAG, reading per-link delays
// from linkDelay. Sources that cannot reach the destination get InfDelay.
// The result is written into out (length NumNodes).
func (ws *Workspace) WorstDelays(g *graph.Graph, w []int32, linkDelay []float64, mask *graph.Mask, out []float64) {
	ws.pathDelays(g, w, linkDelay, mask, out, true)
}

// MeanDelays computes the expected path delay under even ECMP splitting
// (each node forwards to its DAG successors with equal probability).
func (ws *Workspace) MeanDelays(g *graph.Graph, w []int32, linkDelay []float64, mask *graph.Mask, out []float64) {
	ws.pathDelays(g, w, linkDelay, mask, out, false)
}

func (ws *Workspace) pathDelays(g *graph.Graph, w []int32, linkDelay []float64, mask *graph.Mask, out []float64, worst bool) {
	for i := range out {
		out[i] = InfDelay
	}
	// Ascending settled order guarantees DAG successors are final before
	// each node is processed.
	for _, u := range ws.order {
		if u == ws.dest {
			out[u] = 0
			continue
		}
		var acc float64
		k := 0
		for _, li := range g.OutLinks(int(u)) {
			if !ws.onDAGFast(g, w, li, mask) {
				continue
			}
			v := g.Link(int(li)).To
			d := linkDelay[li] + out[v]
			if worst {
				if k == 0 || d > acc {
					acc = d
				}
			} else {
				acc += d
			}
			k++
		}
		if k == 0 {
			continue // settled node with no DAG out-link: impossible unless dest
		}
		if !worst {
			acc /= float64(k)
		}
		out[u] = acc
	}
}

// MaxOverPaths computes, for every source node, the largest per-link
// value encountered on any ECMP path of the last Run's DAG (a bottleneck
// DP over the max semiring) — e.g. the highest link utilization a pair's
// traffic can meet. Unreachable sources get InfDelay.
func (ws *Workspace) MaxOverPaths(g *graph.Graph, w []int32, linkVal []float64, mask *graph.Mask, out []float64) {
	for i := range out {
		out[i] = InfDelay
	}
	for _, u := range ws.order {
		if u == ws.dest {
			out[u] = 0
			continue
		}
		var acc float64
		k := 0
		for _, li := range g.OutLinks(int(u)) {
			if !ws.onDAGFast(g, w, li, mask) {
				continue
			}
			v := g.Link(int(li)).To
			d := math.Max(linkVal[li], out[v])
			if k == 0 || d > acc {
				acc = d
			}
			k++
		}
		if k == 0 {
			continue
		}
		out[u] = acc
	}
}

// HopCounts runs a unit-weight SPF toward dest and writes the minimum hop
// count of every node into out (Inf hops become large positive values via
// float conversion of Inf; callers should check Reached). It reuses the
// workspace, so the last Run's state is overwritten.
func (ws *Workspace) HopCounts(g *graph.Graph, dest int, mask *graph.Mask, unit []int32, out []float64) {
	ws.Run(g, unit, dest, mask)
	for v := 0; v < ws.n; v++ {
		if ws.dist[v] >= Inf {
			out[v] = math.Inf(1)
		} else {
			out[v] = float64(ws.dist[v])
		}
	}
}

// PathTo extracts one shortest path from src to the last Run's
// destination as a sequence of link indices, choosing the first DAG
// successor at every hop. It returns nil if src cannot reach the
// destination.
func (ws *Workspace) PathTo(g *graph.Graph, w []int32, src int, mask *graph.Mask) []int {
	if ws.dist[src] >= Inf {
		return nil
	}
	var path []int
	u := src
	for u != int(ws.dest) {
		advanced := false
		for _, li := range g.OutLinks(u) {
			if ws.onDAGFast(g, w, li, mask) {
				path = append(path, int(li))
				u = g.Link(int(li)).To
				advanced = true
				break
			}
		}
		if !advanced {
			return nil // defensive: settled non-destination always has a successor
		}
	}
	return path
}

// UnitWeights returns a weight vector of all ones sized for g, for
// hop-count SPF runs.
func UnitWeights(g *graph.Graph) []int32 {
	w := make([]int32, g.NumLinks())
	for i := range w {
		w[i] = 1
	}
	return w
}

// State is a snapshot of a Run's outputs (distances and settled order for
// one destination), so that several destinations' DAGs can be revisited —
// e.g. for the delay dynamic program — without re-running Dijkstra.
type State struct {
	Dist  []int64
	Order []int32
	Dest  int32
}

// Save copies the last Run's outputs into s, growing its slices as
// needed.
func (ws *Workspace) Save(s *State) {
	s.Dist = append(s.Dist[:0], ws.dist...)
	s.Order = append(s.Order[:0], ws.order...)
	s.Dest = ws.dest
}

// CopyFrom overwrites s with src, reusing s's backing arrays.
func (s *State) CopyFrom(src *State) {
	s.Dist = append(s.Dist[:0], src.Dist...)
	s.Order = append(s.Order[:0], src.Order...)
	s.Dest = src.Dest
}

// Restore loads a snapshot back into the workspace, as if Run had just
// computed it.
func (ws *Workspace) Restore(s *State) {
	ws.dist = append(ws.dist[:0], s.Dist...)
	ws.order = append(ws.order[:0], s.Order...)
	ws.dest = s.Dest
}

// Affect classifies how a single-link weight change touches one
// destination's cached shortest-path state. It is the decision at the
// heart of incremental evaluation; Classify is its single
// implementation.
type Affect int

const (
	// AffectNone: distances and DAG membership are both provably
	// unchanged — the snapshot, its loads and its path delays all stay
	// valid.
	AffectNone Affect = iota
	// AffectJoinDAG: distances are provably unchanged, but the link now
	// ties the best distance through it and joins the ECMP DAG, changing
	// load splits and path-delay sets. The snapshot's distances stay
	// valid; only DAG-derived state must refresh.
	AffectJoinDAG
	// AffectLeaveDAG: the link was on the DAG and its weight increased.
	// Distances are unchanged — and the change is membership-only — iff
	// the link's tail keeps at least one other tight (on-DAG) successor,
	// which callers check in O(degree) (or O(1) with a cached
	// adjacency); otherwise the tail's distance grows and a fresh run is
	// required.
	AffectLeaveDAG
	// AffectFull: distances can change; the destination needs a fresh
	// Dijkstra.
	AffectFull
)

// Classify reports how changing link li's weight from oldW to newW
// touches this snapshot, in O(1):
//
//   - Dead links (or a dead destination: all-Inf distances) never
//     matter.
//   - A weight decrease matters iff the link now ties or beats the best
//     known distance through it: newW+dist(To) <= dist(From); the tie
//     is AffectJoinDAG, the strict improvement AffectFull.
//   - A weight increase matters iff the link was on the DAG:
//     dist(From) == oldW+dist(To) (Dijkstra's triangle inequality rules
//     out dist(From) exceeding that, so a non-DAG link only gets less
//     attractive); that case is AffectLeaveDAG, refined by the caller.
func (s *State) Classify(g *graph.Graph, li int, oldW, newW int32, mask *graph.Mask) Affect {
	if oldW == newW || !mask.LinkAlive(li) {
		return AffectNone
	}
	l := g.Link(li)
	dv := s.Dist[l.To]
	if dv >= Inf {
		return AffectNone // the link can never lead to this destination
	}
	du := s.Dist[l.From]
	if newW < oldW {
		switch nd := int64(newW) + dv; {
		case nd > du:
			return AffectNone
		case nd == du:
			return AffectJoinDAG
		default:
			return AffectFull
		}
	}
	if du != int64(oldW)+dv {
		return AffectNone
	}
	return AffectLeaveDAG
}

// AffectedBy reports whether this destination's shortest-path structure
// (distances or ECMP DAG membership) can change at all when link li's
// weight moves from oldW to newW: any non-AffectNone classification.
func (s *State) AffectedBy(g *graph.Graph, li int, oldW, newW int32, mask *graph.Mask) bool {
	return s.Classify(g, li, oldW, newW, mask) != AffectNone
}

// LinkOnDAG is the snapshot analogue of Workspace.OnDAG: whether link li
// (with weight wli) lies on a shortest path toward the snapshot's
// destination.
func (s *State) LinkOnDAG(g *graph.Graph, wli int32, li int, mask *graph.Mask) bool {
	if !mask.LinkAlive(li) {
		return false
	}
	l := g.Link(li)
	dv := s.Dist[l.To]
	return dv < Inf && s.Dist[l.From] == dv+int64(wli)
}

// Binary heap with lazy deletion.

func (ws *Workspace) heapPush(e heapEntry) {
	ws.heap = append(ws.heap, e)
	i := len(ws.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if ws.heap[parent].dist <= ws.heap[i].dist {
			break
		}
		ws.heap[parent], ws.heap[i] = ws.heap[i], ws.heap[parent]
		i = parent
	}
}

func (ws *Workspace) heapPop() heapEntry {
	top := ws.heap[0]
	last := len(ws.heap) - 1
	ws.heap[0] = ws.heap[last]
	ws.heap = ws.heap[:last]
	i := 0
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < last && ws.heap[left].dist < ws.heap[smallest].dist {
			smallest = left
		}
		if right < last && ws.heap[right].dist < ws.heap[smallest].dist {
			smallest = right
		}
		if smallest == i {
			break
		}
		ws.heap[i], ws.heap[smallest] = ws.heap[smallest], ws.heap[i]
		i = smallest
	}
	return top
}
