package spf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSaveRestore(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	var st State
	ws.Save(&st)
	wantDist := append([]int64(nil), ws.dist...)

	// Overwrite with a different destination, then restore.
	ws.Run(g, w, 0, nil)
	ws.Restore(&st)
	for v := 0; v < g.NumNodes(); v++ {
		if ws.Dist(v) != wantDist[v] {
			t.Errorf("dist[%d] = %d after restore, want %d", v, ws.Dist(v), wantDist[v])
		}
	}
	// DAG queries keep working after restore.
	if !ws.OnDAG(g, w, 4, nil) {
		t.Error("link 1->3 should be on restored DAG")
	}
	// Delay DP works off the restored state.
	linkDelay := make([]float64, g.NumLinks())
	for i := range linkDelay {
		linkDelay[i] = 1
	}
	out := make([]float64, g.NumNodes())
	ws.WorstDelays(g, w, linkDelay, nil, out)
	if out[0] != 2 {
		t.Errorf("worst delay after restore = %g, want 2", out[0])
	}
}

func TestSaveReusesBuffers(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	var st State
	ws.Save(&st)
	first := &st.Dist[0]
	ws.Run(g, w, 0, nil)
	ws.Save(&st)
	if &st.Dist[0] != first {
		t.Error("Save should reuse the snapshot's backing array")
	}
}

func TestMaxOverPaths(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, nil)
	val := make([]float64, g.NumLinks())
	val[0] = 0.2 // 0->1
	val[4] = 0.9 // 1->3
	val[2] = 0.5 // 0->2
	val[6] = 0.1 // 2->3
	out := make([]float64, g.NumNodes())
	ws.MaxOverPaths(g, w, val, nil, out)
	// Both ECMP paths from 0: upper bottleneck 0.9, lower 0.5; worst 0.9.
	if math.Abs(out[0]-0.9) > 1e-12 {
		t.Errorf("maxOverPaths[0] = %g, want 0.9", out[0])
	}
	if out[3] != 0 {
		t.Errorf("destination value = %g, want 0", out[3])
	}
	if math.Abs(out[2]-0.1) > 1e-12 {
		t.Errorf("maxOverPaths[2] = %g, want 0.1", out[2])
	}
}

func TestMaxOverPathsUnreachable(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	m.FailLink(0)
	m.FailLink(2)
	ws := NewWorkspace(g)
	ws.Run(g, w, 3, m)
	out := make([]float64, g.NumNodes())
	ws.MaxOverPaths(g, w, make([]float64, g.NumLinks()), m, out)
	if out[0] < InfDelay {
		t.Errorf("unreachable source = %g, want InfDelay", out[0])
	}
}

func TestQuickMaxOverPathsBoundsLinkValues(t *testing.T) {
	// The bottleneck value of any reachable source lies within the range
	// of link values on its DAG.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		val := make([]float64, g.NumLinks())
		var maxVal float64
		for i := range val {
			val[i] = r.Float64()
			if val[i] > maxVal {
				maxVal = val[i]
			}
		}
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		out := make([]float64, g.NumNodes())
		ws.MaxOverPaths(g, w, val, nil, out)
		for v := range out {
			if v == dest {
				continue
			}
			if out[v] >= InfDelay {
				continue
			}
			if out[v] < 0 || out[v] > maxVal+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickPathToMatchesDist(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		ws := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		for src := 0; src < g.NumNodes(); src++ {
			path := ws.PathTo(g, w, src, nil)
			if src == dest {
				if len(path) != 0 {
					return false
				}
				continue
			}
			if path == nil {
				return false // connected by construction
			}
			var sum int64
			at := src
			for _, li := range path {
				l := g.Link(li)
				if l.From != at {
					return false // not contiguous
				}
				at = l.To
				sum += int64(w[li])
			}
			if at != dest || sum != ws.Dist(src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
