package spf

// RepairStats counts the SPF work a Workspace has performed: fresh
// Dijkstra runs, incremental repairs by path taken, and the total nodes
// whose distance changed across effective repairs. The counters are
// plain ints bumped unconditionally (a handful of adds per repair, far
// below the repair's own cost), so callers that own a workspace — e.g.
// a session worker during a recompute region — can diff snapshots
// around a region to attribute repair modes to one update without any
// registry indirection.
type RepairStats struct {
	Runs         int
	Increase     int
	Decrease     int
	Noop         int
	Batch        int
	ChangedNodes int
}

// Sub returns the element-wise difference s - prev.
func (s RepairStats) Sub(prev RepairStats) RepairStats {
	return RepairStats{
		Runs:         s.Runs - prev.Runs,
		Increase:     s.Increase - prev.Increase,
		Decrease:     s.Decrease - prev.Decrease,
		Noop:         s.Noop - prev.Noop,
		Batch:        s.Batch - prev.Batch,
		ChangedNodes: s.ChangedNodes - prev.ChangedNodes,
	}
}

// Add returns the element-wise sum s + o.
func (s RepairStats) Add(o RepairStats) RepairStats {
	return RepairStats{
		Runs:         s.Runs + o.Runs,
		Increase:     s.Increase + o.Increase,
		Decrease:     s.Decrease + o.Decrease,
		Noop:         s.Noop + o.Noop,
		Batch:        s.Batch + o.Batch,
		ChangedNodes: s.ChangedNodes + o.ChangedNodes,
	}
}

// Stats returns the workspace's cumulative repair statistics.
func (ws *Workspace) Stats() RepairStats { return ws.stats }
