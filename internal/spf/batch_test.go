package spf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topogen"
)

func TestRepairBatchDiamond(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)
	ws.Run(g, w, 3, m)

	// Fail both of node 0's out-links at once: node 0 disconnects in one
	// batch instead of two single repairs.
	m.FailLink(0)
	m.FailLink(2)
	if !ws.RepairBatch(g, w, []LinkChange{
		{Link: 0, OldEff: 1, NewEff: Inf},
		{Link: 2, OldEff: 1, NewEff: Inf},
	}, m) {
		t.Fatal("disconnecting batch reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "batch down", g, w, m, ws, fresh)
	if ws.Reached(0) {
		t.Fatal("node 0 should be unreachable")
	}

	// Restore both in one batch.
	m.ReviveLink(0)
	m.ReviveLink(2)
	if !ws.RepairBatch(g, w, []LinkChange{
		{Link: 0, OldEff: Inf, NewEff: 1},
		{Link: 2, OldEff: Inf, NewEff: 1},
	}, m) {
		t.Fatal("reconnecting batch reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "batch up", g, w, m, ws, fresh)

	// Raise both legs of the upper path.
	w[0] = 4
	w[4] = 7
	if !ws.RepairBatch(g, w, []LinkChange{
		{Link: 0, OldEff: 1, NewEff: 4},
		{Link: 4, OldEff: 1, NewEff: 7},
	}, m) {
		t.Fatal("raise batch reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "batch raise", g, w, m, ws, fresh)

	// Mixed batch: lower one upper leg while raising the lower path —
	// both phases of the mid-state decomposition fire in one call.
	w[0] = 2
	w[6] = 5
	if !ws.RepairBatch(g, w, []LinkChange{
		{Link: 0, OldEff: 4, NewEff: 2},
		{Link: 6, OldEff: 1, NewEff: 5},
	}, m) {
		t.Fatal("mixed batch reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "batch mixed", g, w, m, ws, fresh)

	// A batch of pure membership changes — failing one of node 0's two
	// equal tight out-links together with an off-DAG reverse link — must
	// not move any distance.
	w[0], w[4], w[6] = 1, 1, 1
	ws.Run(g, w, 3, m)
	m.FailLink(0)
	m.FailLink(1)
	if ws.RepairBatch(g, w, []LinkChange{
		{Link: 0, OldEff: 1, NewEff: Inf},
		{Link: 1, OldEff: 1, NewEff: Inf},
	}, m) {
		t.Fatal("membership-only batch must not change distances")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "batch ecmp", g, w, m, ws, fresh)
}

// TestRepairBatchEpochWraparound: the per-link batch marks are epoch
// cleared on wraparound like the node marks.
func TestRepairBatchEpochWraparound(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)
	ws.Run(g, w, 3, m)

	ws.batchEpoch = math.MaxInt32
	for i := range ws.batchOldMark {
		ws.batchOldMark[i] = 1
		ws.batchUpMark[i] = 2
		ws.batchOld[i] = 999
	}
	for step := 0; step < 3; step++ {
		m.FailLink(0)
		ws.RepairBatch(g, w, []LinkChange{{Link: 0, OldEff: 1, NewEff: Inf}}, m)
		fresh.Run(g, w, 3, m)
		requireSameSPF(t, "wrap down", g, w, m, ws, fresh)
		if step == 0 && ws.batchEpoch != 1 {
			t.Fatalf("batch epoch after wrap = %d, want 1", ws.batchEpoch)
		}
		m.ReviveLink(0)
		ws.RepairBatch(g, w, []LinkChange{{Link: 0, OldEff: Inf, NewEff: 1}}, m)
		fresh.Run(g, w, 3, m)
		requireSameSPF(t, "wrap up", g, w, m, ws, fresh)
	}
}

// randomBatch mutates w/mask/down with 1..maxK simultaneous link
// changes (toggles and weight moves on distinct links) and returns the
// batch describing them.
func randomBatch(r *rand.Rand, g *graph.Graph, w []int32, mask *graph.Mask, down []bool, maxK int) []LinkChange {
	m := g.NumLinks()
	k := 1 + r.Intn(maxK)
	used := make(map[int]bool, k)
	var changes []LinkChange
	for len(changes) < k {
		li := r.Intn(m)
		if used[li] {
			continue
		}
		used[li] = true
		switch {
		case down[li]:
			mask.ReviveLink(li)
			down[li] = false
			changes = append(changes, LinkChange{Link: li, OldEff: Inf, NewEff: int64(w[li])})
		case r.Float64() < 0.5:
			mask.FailLink(li)
			down[li] = true
			changes = append(changes, LinkChange{Link: li, OldEff: int64(w[li]), NewEff: Inf})
		default:
			oldW := w[li]
			newW := int32(1 + r.Intn(20))
			w[li] = newW
			changes = append(changes, LinkChange{Link: li, OldEff: int64(oldW), NewEff: int64(newW)})
		}
	}
	return changes
}

// TestQuickRepairBatchMatchesRun maintains one destination's SPF
// through random multi-link batches purely by batch repair, comparing
// against a from-scratch run after every batch.
func TestQuickRepairBatchMatchesRun(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		mask := graph.NewMask(g)
		down := make([]bool, g.NumLinks())
		ws := NewWorkspace(g)
		fresh := NewWorkspace(g)
		ws.Run(g, w, dest, mask)
		for step := 0; step < 30; step++ {
			ws.RepairBatch(g, w, randomBatch(r, g, w, mask, down, 6), mask)
			fresh.Run(g, w, dest, mask)
			for v := 0; v < g.NumNodes(); v++ {
				if ws.dist[v] != fresh.dist[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// testRepairBatchEquivalence drives per-destination snapshots through
// random multi-link batches via State.RepairBatch, asserting full
// bit-identity with a from-scratch run after every batch.
func testRepairBatchEquivalence(t *testing.T, g *graph.Graph, ndests, steps, maxK int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n, m := g.NumNodes(), g.NumLinks()
	w := make([]int32, m)
	for i := range w {
		w[i] = int32(1 + r.Intn(20))
	}
	mask := graph.NewMask(g)
	down := make([]bool, m)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)

	dests := r.Perm(n)[:ndests]
	states := make([]State, ndests)
	for i, d := range dests {
		ws.Run(g, w, d, mask)
		ws.Save(&states[i])
	}

	for step := 0; step < steps; step++ {
		changes := randomBatch(r, g, w, mask, down, maxK)
		for i := range states {
			states[i].RepairBatch(ws, g, w, changes, mask)
		}
		for i, d := range dests {
			fresh.Run(g, w, d, mask)
			ws.Restore(&states[i])
			requireSameSPF(t, "batch", g, w, mask, ws, fresh)
		}
	}
}

func TestRepairBatchEquivalenceRand8(t *testing.T) {
	g := repairTestTopo(t, topogen.RandKind, 8, 40, 4)
	testRepairBatchEquivalence(t, g, 8, 80, 8, 21)
}

func TestRepairBatchEquivalenceISP16(t *testing.T) {
	g := repairTestTopo(t, topogen.ISPKind, 0, 0, 5)
	testRepairBatchEquivalence(t, g, 8, 60, 8, 22)
}

func TestRepairBatchEquivalenceRandTopo100(t *testing.T) {
	steps := 30
	if testing.Short() {
		steps = 8
	}
	g := repairTestTopo(t, topogen.RandKind, 100, 500, 6)
	testRepairBatchEquivalence(t, g, 5, steps, 12, 23)
}

// TestRepairBatchSRLG: an 8-link shared-risk group trips and later
// recovers as two batches, the workload the batch path exists for.
func TestRepairBatchSRLG(t *testing.T) {
	g := repairTestTopo(t, topogen.RandKind, 100, 500, 7)
	r := rand.New(rand.NewSource(31))
	w := make([]int32, g.NumLinks())
	for i := range w {
		w[i] = int32(1 + r.Intn(20))
	}
	mask := graph.NewMask(g)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)

	group := r.Perm(g.NumLinks())[:8]
	for round := 0; round < 5; round++ {
		dest := r.Intn(g.NumNodes())
		ws.Run(g, w, dest, mask)

		var trip, restore []LinkChange
		for _, li := range group {
			mask.FailLink(li)
			trip = append(trip, LinkChange{Link: li, OldEff: int64(w[li]), NewEff: Inf})
			restore = append(restore, LinkChange{Link: li, OldEff: Inf, NewEff: int64(w[li])})
		}
		ws.RepairBatch(g, w, trip, mask)
		fresh.Run(g, w, dest, mask)
		requireSameSPF(t, "srlg trip", g, w, mask, ws, fresh)

		for _, li := range group {
			mask.ReviveLink(li)
		}
		ws.RepairBatch(g, w, restore, mask)
		fresh.Run(g, w, dest, mask)
		requireSameSPF(t, "srlg restore", g, w, mask, ws, fresh)
	}
}
