// Package spf implements the shortest-path machinery for destination-based
// routing with ECMP: reverse Dijkstra toward a destination, membership in
// the resulting shortest-path DAG, all-to-one traffic accumulation with
// even splitting (the standard OSPF/Fortz–Thorup model), per-source
// worst/mean path-delay dynamic programs over the DAG, and dynamic
// shortest-path repair for single-link events.
//
// All entry points operate through a reusable Workspace so that hot loops
// (thousands of evaluations per optimization run) allocate nothing. A
// Workspace's outputs for one destination can be snapshotted into a State
// and later Restored, which is how the incremental evaluation engine
// (routing.Session) caches one SPF per destination per scenario.
//
// Two properties make those cached snapshots exact rather than
// approximate:
//
//   - The load accumulation is pull-based and canonical: per-link loads
//     are a function of the distances alone, independent of the order in
//     which Dijkstra settled equal-distance nodes, so a snapshot and a
//     fresh run produce bit-identical floats (AccumulateLoadsInto).
//   - Single-link changes are classified in O(1) against a snapshot
//     (State.Classify): provably-unchanged destinations are skipped
//     outright, membership-only changes refresh the DAG without touching
//     distances, and only genuine distance changes need shortest-path
//     work.
//
// For that last class, the package provides Ramalingam–Reps-style repair
// (State.Repair, Workspace.Repair/RepairLinkDown/RepairLinkUp): the
// standing SPF is updated by recomputing only the vertices whose distance
// actually changes, which on large topologies is a small set for almost
// every link event. The repair's invariants — exact distances, a valid
// ascending settled order modulo ties, derived DAG membership — are
// documented in repair.go; DESIGN.md ("Incremental SPF repair") explains
// how they compose with the session caches and when callers fall back to
// a full Dijkstra.
package spf
