package spf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/topogen"
)

// TestRepairEpochWraparound: when the mark epoch wraps after ~2^31
// repairs, stale marks from earlier cycles must not collide with the
// fresh epoch (the arrays are cleared on wrap).
func TestRepairEpochWraparound(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	w[2] = 3 // 0->2 expensive: 0->1->3 is node 0's unique shortest path
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)
	ws.Run(g, w, 3, nil)

	// Poison the mark arrays with values the post-wrap epochs will take.
	ws.repEpoch = math.MaxInt32
	for i := range ws.aMark {
		ws.aMark[i] = 1
		ws.qMark[i] = 2
	}
	for step, newW := range []int32{7, 1, 12} {
		oldW := w[0]
		w[0] = newW
		ws.Repair(g, w, 0, oldW, newW, nil)
		fresh.Run(g, w, 3, nil)
		requireSameSPF(t, "wrap step", g, w, nil, ws, fresh)
		if step == 0 && ws.repEpoch != 1 {
			t.Fatalf("epoch after wrap = %d, want 1", ws.repEpoch)
		}
	}
}

func TestRepairWeightDiamond(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	w[2] = 3 // 0->2 expensive: the upper path is node 0's unique shortest
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)
	ws.Run(g, w, 3, nil)

	// Increase the unique-path link 0->1 past the lower alternative:
	// node 0's distance grows from 2 to 4 (via 0->2).
	w[0] = 5
	if !ws.Repair(g, w, 0, 1, 5, nil) {
		t.Fatal("increase on a unique-path link reported no change")
	}
	fresh.Run(g, w, 3, nil)
	requireSameSPF(t, "increase", g, w, nil, ws, fresh)

	// Decrease it back: restores the original distances.
	w[0] = 1
	if !ws.Repair(g, w, 0, 5, 1, nil) {
		t.Fatal("decrease back reported no change")
	}
	fresh.Run(g, w, 3, nil)
	requireSameSPF(t, "decrease", g, w, nil, ws, fresh)

	// On the unit-weight diamond, increasing one of node 0's two tight
	// out-links is a membership-only change: distances provably hold.
	// First rejoin the lower path at a distance tie — also membership
	// only, the decrease side of the same coin.
	w[2] = 1
	if ws.Repair(g, w, 2, 3, 1, nil) {
		t.Fatal("rejoining at a distance tie must not change distances")
	}
	fresh.Run(g, w, 3, nil)
	requireSameSPF(t, "tie restore", g, w, nil, ws, fresh)
	w[0] = 5
	if ws.Repair(g, w, 0, 1, 5, nil) {
		t.Fatal("increase with a surviving tight sibling must not change distances")
	}
	fresh.Run(g, w, 3, nil)
	requireSameSPF(t, "ecmp leave", g, w, nil, ws, fresh)
	w[0] = 1

	// A reverse-direction link (3->1) never lies toward destination 3:
	// changing it is a no-op that must not touch anything.
	ws.Run(g, w, 3, nil)
	w[5] = 17
	if ws.Repair(g, w, 5, 1, 17, nil) {
		t.Fatal("reverse-link change reported a distance change")
	}
	fresh.Run(g, w, 3, nil)
	requireSameSPF(t, "noop", g, w, nil, ws, fresh)
}

func TestRepairLinkToggleDiamond(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	m := graph.NewMask(g)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)
	ws.Run(g, w, 3, m)

	// Fail 0->1: node 0 reroutes via the lower path at the same distance
	// (ECMP membership change only), so distances hold.
	m.FailLink(0)
	if ws.RepairLinkDown(g, w, 0, m) {
		t.Fatal("failing one of two equal paths must not change distances")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "down 0", g, w, m, ws, fresh)

	// Fail 0->2 too: node 0 becomes disconnected.
	m.FailLink(2)
	if !ws.RepairLinkDown(g, w, 2, m) {
		t.Fatal("disconnecting failure reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "down 2", g, w, m, ws, fresh)
	if ws.Reached(0) {
		t.Fatal("node 0 should be unreachable")
	}

	// Restore 0->1: node 0 reconnects through node 1.
	m.ReviveLink(0)
	if !ws.RepairLinkUp(g, w, 0, m) {
		t.Fatal("reconnecting restoration reported no change")
	}
	fresh.Run(g, w, 3, m)
	requireSameSPF(t, "up 0", g, w, m, ws, fresh)
}

// requireSameSPF asserts the repaired workspace and a freshly-run one
// agree bit-for-bit on everything downstream consumers read: distances,
// a valid settled order, per-link load contributions, and both delay
// DPs. Orders may permute distance ties, which no consumer observes.
func requireSameSPF(t *testing.T, step string, g *graph.Graph, w []int32, mask *graph.Mask, repaired, fresh *Workspace) {
	t.Helper()
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if repaired.dist[v] != fresh.dist[v] {
			t.Fatalf("%s: dist[%d] = %d, fresh %d", step, v, repaired.dist[v], fresh.dist[v])
		}
	}
	if len(repaired.order) != len(fresh.order) {
		t.Fatalf("%s: order length %d, fresh %d", step, len(repaired.order), len(fresh.order))
	}
	seen := make(map[int32]bool, len(repaired.order))
	for i, v := range repaired.order {
		if seen[v] {
			t.Fatalf("%s: node %d appears twice in repaired order", step, v)
		}
		seen[v] = true
		if repaired.dist[v] >= Inf {
			t.Fatalf("%s: unreachable node %d in repaired order", step, v)
		}
		if i > 0 && repaired.dist[v] < repaired.dist[repaired.order[i-1]] {
			t.Fatalf("%s: repaired order not ascending at position %d", step, i)
		}
	}
	for _, v := range fresh.order {
		if !seen[v] {
			t.Fatalf("%s: reachable node %d missing from repaired order", step, v)
		}
	}

	dem := make([]float64, n)
	for v := range dem {
		dem[v] = float64(v%7) + 0.25
	}
	lr := make([]float64, g.NumLinks())
	lf := make([]float64, g.NumLinks())
	dropR := repaired.AccumulateLoadsInto(g, w, dem, mask, lr)
	dropF := fresh.AccumulateLoadsInto(g, w, dem, mask, lf)
	if dropR != dropF {
		t.Fatalf("%s: dropped %g, fresh %g", step, dropR, dropF)
	}
	for li := range lr {
		if lr[li] != lf[li] {
			t.Fatalf("%s: load[%d] = %g, fresh %g", step, li, lr[li], lf[li])
		}
	}

	linkDelay := make([]float64, g.NumLinks())
	for li := range linkDelay {
		linkDelay[li] = float64(li%5) + 0.5
	}
	dr := make([]float64, n)
	df := make([]float64, n)
	repaired.WorstDelays(g, w, linkDelay, mask, dr)
	fresh.WorstDelays(g, w, linkDelay, mask, df)
	for v := range dr {
		if dr[v] != df[v] {
			t.Fatalf("%s: worst delay[%d] = %g, fresh %g", step, v, dr[v], df[v])
		}
	}
	repaired.MeanDelays(g, w, linkDelay, mask, dr)
	fresh.MeanDelays(g, w, linkDelay, mask, df)
	for v := range dr {
		if dr[v] != df[v] {
			t.Fatalf("%s: mean delay[%d] = %g, fresh %g", step, v, dr[v], df[v])
		}
	}
}

// TestQuickRepairMatchesRun maintains one destination's SPF through a
// random sequence of single-link weight moves (with immediate reverts
// mixed in) purely by repair, comparing against a from-scratch run after
// every event.
func TestQuickRepairMatchesRun(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		ws := NewWorkspace(g)
		fresh := NewWorkspace(g)
		ws.Run(g, w, dest, nil)
		for step := 0; step < 40; step++ {
			li := r.Intn(g.NumLinks())
			oldW := w[li]
			newW := int32(1 + r.Intn(20))
			w[li] = newW
			ws.Repair(g, w, li, oldW, newW, nil)
			fresh.Run(g, w, dest, nil)
			for v := 0; v < g.NumNodes(); v++ {
				if ws.dist[v] != fresh.dist[v] {
					return false
				}
			}
			if r.Float64() < 0.4 {
				w[li] = oldW
				ws.Repair(g, w, li, newW, oldW, nil)
				fresh.Run(g, w, dest, nil)
				for v := 0; v < g.NumNodes(); v++ {
					if ws.dist[v] != fresh.dist[v] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickRepairTogglesMatchRun is the same with link up/down events
// against a mask, the selector's telemetry shape.
func TestQuickRepairTogglesMatchRun(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g, w := randGraph(r)
		dest := r.Intn(g.NumNodes())
		m := graph.NewMask(g)
		ws := NewWorkspace(g)
		fresh := NewWorkspace(g)
		ws.Run(g, w, dest, m)
		down := make([]bool, g.NumLinks())
		for step := 0; step < 40; step++ {
			li := r.Intn(g.NumLinks())
			if down[li] {
				m.ReviveLink(li)
				ws.RepairLinkUp(g, w, li, m)
			} else {
				m.FailLink(li)
				ws.RepairLinkDown(g, w, li, m)
			}
			down[li] = !down[li]
			fresh.Run(g, w, dest, m)
			for v := 0; v < g.NumNodes(); v++ {
				if ws.dist[v] != fresh.dist[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// testRepairEquivalence drives a set of per-destination snapshots
// through a randomized sequence of weight moves, link toggles and
// reverts, repairing every snapshot in place (spf.State.Repair /
// RepairLink) and asserting full bit-identity with a from-scratch run
// after every event. This is the tentpole acceptance property on the
// paper's topologies.
func testRepairEquivalence(t *testing.T, g *graph.Graph, ndests, steps int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	n, m := g.NumNodes(), g.NumLinks()
	w := make([]int32, m)
	for i := range w {
		w[i] = int32(1 + r.Intn(20))
	}
	mask := graph.NewMask(g)
	ws := NewWorkspace(g)
	fresh := NewWorkspace(g)

	dests := r.Perm(n)[:ndests]
	states := make([]State, ndests)
	for i, d := range dests {
		ws.Run(g, w, d, mask)
		ws.Save(&states[i])
	}

	check := func(step string) {
		t.Helper()
		for i, d := range dests {
			fresh.Run(g, w, d, mask)
			ws.Restore(&states[i])
			requireSameSPF(t, step, g, w, mask, ws, fresh)
		}
	}

	repairAll := func(li int, oldW, newW int32) {
		for i := range states {
			states[i].Repair(ws, g, w, li, oldW, newW, mask)
		}
	}
	toggleAll := func(li int, up bool) {
		for i := range states {
			states[i].RepairLink(ws, g, w, li, up, mask)
		}
	}

	down := make([]bool, m)
	for step := 0; step < steps; step++ {
		switch {
		case r.Float64() < 0.45:
			li := r.Intn(m)
			if down[li] {
				mask.ReviveLink(li)
				toggleAll(li, true)
			} else {
				mask.FailLink(li)
				toggleAll(li, false)
			}
			down[li] = !down[li]
			check("toggle")
		default:
			li := r.Intn(m)
			oldW := w[li]
			newW := int32(1 + r.Intn(20))
			w[li] = newW
			repairAll(li, oldW, newW)
			check("weight")
			if r.Float64() < 0.5 {
				w[li] = oldW
				repairAll(li, newW, oldW)
				check("revert")
			}
		}
	}
}

func repairTestTopo(t *testing.T, kind topogen.Kind, nodes, links int, seed int64) *graph.Graph {
	t.Helper()
	g, err := topogen.Generate(topogen.Spec{Kind: kind, Nodes: nodes, DirectedLinks: links}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRepairEquivalenceRand8(t *testing.T) {
	g := repairTestTopo(t, topogen.RandKind, 8, 40, 1)
	testRepairEquivalence(t, g, 8, 150, 11)
}

func TestRepairEquivalenceISP16(t *testing.T) {
	g := repairTestTopo(t, topogen.ISPKind, 0, 0, 2)
	testRepairEquivalence(t, g, 8, 100, 12)
}

func TestRepairEquivalenceRandTopo100(t *testing.T) {
	steps := 60
	if testing.Short() {
		steps = 15
	}
	g := repairTestTopo(t, topogen.RandKind, 100, 500, 3)
	testRepairEquivalence(t, g, 5, steps, 13)
}

// TestStateRepairPreservesWorkspace: the in-place State repair must not
// disturb the workspace's own last-Run outputs — sessions interleave the
// two freely.
func TestStateRepairPreservesWorkspace(t *testing.T) {
	g := diamond()
	w := equalWeights(g, 1)
	ws := NewWorkspace(g)

	ws.Run(g, w, 3, nil)
	var st State
	ws.Save(&st)

	ws.Run(g, w, 0, nil) // workspace now holds destination 0
	wantDist := append([]int64(nil), ws.dist...)
	wantOrder := append([]int32(nil), ws.order...)

	// Increase 1->3, node 1's only tight out-link toward destination 3:
	// its distance moves from 1 to 3 (rerouting 1->0->2->3).
	w[4] = 6
	if !st.Repair(ws, g, w, 4, 1, 6, nil) {
		t.Fatal("repair reported no change")
	}
	for v := range wantDist {
		if ws.dist[v] != wantDist[v] {
			t.Fatalf("workspace dist[%d] clobbered: %d != %d", v, ws.dist[v], wantDist[v])
		}
	}
	if len(ws.order) != len(wantOrder) {
		t.Fatalf("workspace order clobbered")
	}
	for i := range wantOrder {
		if ws.order[i] != wantOrder[i] {
			t.Fatalf("workspace order clobbered at %d", i)
		}
	}
	if ws.dest != 0 {
		t.Fatalf("workspace dest clobbered: %d", ws.dest)
	}

	fresh := NewWorkspace(g)
	fresh.Run(g, w, 3, nil)
	ws.Restore(&st)
	requireSameSPF(t, "state repair", g, w, nil, ws, fresh)
}
