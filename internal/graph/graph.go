// Package graph provides the directed-multigraph substrate used by the
// routing system: compact adjacency storage, link capacities and
// propagation delays, reverse-link pairing for undirected failure
// semantics, and failure masks for link and node outages.
//
// A Graph is immutable once built (see Builder). All per-scenario state
// (which links are down) lives in a Mask so that a single Graph can be
// shared by many concurrent evaluations.
package graph

import (
	"fmt"
	"math"
)

// Link is a directed network link.
type Link struct {
	From     int     // source node
	To       int     // destination node
	Capacity float64 // capacity in Mbps
	Delay    float64 // propagation delay in ms
	Reverse  int     // index of the reverse link, or -1 if none
}

// Coord is a planar node position, used by geometric topology generators
// and for deriving propagation delays from distances.
type Coord struct {
	X, Y float64
}

// Graph is an immutable directed multigraph.
type Graph struct {
	n      int
	links  []Link
	out    [][]int32 // out[v] lists indices of links leaving v
	in     [][]int32 // in[v] lists indices of links entering v
	from   []int32   // from[li]/to[li] mirror the link endpoints so hot
	to     []int32   // per-link loops avoid copying whole Link structs
	names  []string
	coords []Coord
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with the given index.
func (g *Graph) Link(i int) Link { return g.links[i] }

// Links returns all links. The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// LinkEndpoints returns the per-link endpoint arrays (from[li], to[li]),
// shared by every caller that needs allocation-free endpoint lookups in
// hot loops (SPF membership tests, failure masks, sessions). The
// returned slices must not be modified.
func (g *Graph) LinkEndpoints() (from, to []int32) { return g.from, g.to }

// OutLinks returns the indices of links leaving node v.
// The returned slice must not be modified.
func (g *Graph) OutLinks(v int) []int32 { return g.out[v] }

// InLinks returns the indices of links entering node v.
// The returned slice must not be modified.
func (g *Graph) InLinks(v int) []int32 { return g.in[v] }

// NodeName returns the name of node v, or its index as a string when the
// graph carries no names.
func (g *Graph) NodeName(v int) string {
	if g.names == nil || g.names[v] == "" {
		return fmt.Sprintf("n%d", v)
	}
	return g.names[v]
}

// NodeCoord returns the planar position of node v and whether the graph
// carries coordinates at all.
func (g *Graph) NodeCoord(v int) (Coord, bool) {
	if g.coords == nil {
		return Coord{}, false
	}
	return g.coords[v], true
}

// OutDegree returns the number of links leaving v.
func (g *Graph) OutDegree(v int) int { return len(g.out[v]) }

// MeanOutDegree returns the average out-degree.
func (g *Graph) MeanOutDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.links)) / float64(g.n)
}

// UndirectedEdges returns one link index per reverse-paired link pair
// (the lower index of each pair) followed by all unpaired links. The
// result enumerates the "physical" edges of the network.
func (g *Graph) UndirectedEdges() []int {
	edges := make([]int, 0, len(g.links)/2+1)
	for i, l := range g.links {
		if l.Reverse < 0 || i < l.Reverse {
			edges = append(edges, i)
		}
	}
	return edges
}

// TotalCapacity returns the sum of all link capacities in Mbps.
func (g *Graph) TotalCapacity() float64 {
	var sum float64
	for _, l := range g.links {
		sum += l.Capacity
	}
	return sum
}

// MaxPropDelay returns the largest single-link propagation delay in ms.
func (g *Graph) MaxPropDelay() float64 {
	var m float64
	for _, l := range g.links {
		m = math.Max(m, l.Delay)
	}
	return m
}

// IsStronglyConnected reports whether every node can reach every other
// node over alive links. A nil mask means all links are alive.
func (g *Graph) IsStronglyConnected(mask *Mask) bool {
	if g.n == 0 {
		return false
	}
	return g.reachableCount(0, mask, false) == g.n &&
		g.reachableCount(0, mask, true) == g.n
}

// ReachableFrom returns the number of nodes reachable from src (including
// src) over alive links.
func (g *Graph) ReachableFrom(src int, mask *Mask) int {
	return g.reachableCount(src, mask, false)
}

func (g *Graph) reachableCount(src int, mask *Mask, reversed bool) int {
	seen := make([]bool, g.n)
	stack := make([]int, 0, g.n)
	seen[src] = true
	stack = append(stack, src)
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		adj := g.out[v]
		if reversed {
			adj = g.in[v]
		}
		for _, li := range adj {
			if mask != nil && !mask.LinkAlive(int(li)) {
				continue
			}
			l := g.links[li]
			next := l.To
			if reversed {
				next = l.From
			}
			if mask != nil && !mask.NodeAlive(next) {
				continue
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
				count++
			}
		}
	}
	return count
}

// Validate checks structural invariants and returns the first violation
// found, or nil. Build calls it automatically; it is exported so that
// deserialized graphs can be re-checked.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative node count %d", g.n)
	}
	for i, l := range g.links {
		if l.From < 0 || l.From >= g.n || l.To < 0 || l.To >= g.n {
			return fmt.Errorf("graph: link %d endpoints (%d,%d) out of range [0,%d)", i, l.From, l.To, g.n)
		}
		if l.From == l.To {
			return fmt.Errorf("graph: link %d is a self-loop at node %d", i, l.From)
		}
		if l.Capacity <= 0 {
			return fmt.Errorf("graph: link %d has non-positive capacity %g", i, l.Capacity)
		}
		if l.Delay < 0 || math.IsNaN(l.Delay) || math.IsInf(l.Delay, 0) {
			return fmt.Errorf("graph: link %d has invalid delay %g", i, l.Delay)
		}
		if l.Reverse >= 0 {
			if l.Reverse >= len(g.links) {
				return fmt.Errorf("graph: link %d reverse index %d out of range", i, l.Reverse)
			}
			r := g.links[l.Reverse]
			if r.From != l.To || r.To != l.From {
				return fmt.Errorf("graph: link %d and its reverse %d are not opposite", i, l.Reverse)
			}
			if r.Reverse != i {
				return fmt.Errorf("graph: reverse pairing of links %d and %d is not mutual", i, l.Reverse)
			}
		}
	}
	return nil
}
