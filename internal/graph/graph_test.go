package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// ring builds a bidirectional ring over n nodes.
func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 500, 5)
	}
	return b.MustBuild()
}

func TestBuilderAddEdgePairsReverse(t *testing.T) {
	b := NewBuilder(3)
	f, r := b.AddEdge(0, 1, 100, 2.5)
	g := b.MustBuild()
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	lf, lr := g.Link(f), g.Link(r)
	if lf.Reverse != r || lr.Reverse != f {
		t.Errorf("reverse pairing: got %d/%d, want %d/%d", lf.Reverse, lr.Reverse, r, f)
	}
	if lf.From != 0 || lf.To != 1 || lr.From != 1 || lr.To != 0 {
		t.Errorf("endpoints wrong: %+v %+v", lf, lr)
	}
	if lf.Capacity != 100 || lf.Delay != 2.5 {
		t.Errorf("attributes wrong: %+v", lf)
	}
}

func TestBuilderAddArcNoReverse(t *testing.T) {
	b := NewBuilder(2)
	i := b.AddArc(0, 1, 10, 1)
	g := b.MustBuild()
	if g.Link(i).Reverse != -1 {
		t.Errorf("AddArc link should have Reverse=-1, got %d", g.Link(i).Reverse)
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"self-loop", func() *Builder {
			b := NewBuilder(2)
			b.AddArc(1, 1, 10, 1)
			return b
		}},
		{"out-of-range", func() *Builder {
			b := NewBuilder(2)
			b.AddArc(0, 5, 10, 1)
			return b
		}},
		{"zero-capacity", func() *Builder {
			b := NewBuilder(2)
			b.AddArc(0, 1, 0, 1)
			return b
		}},
		{"negative-delay", func() *Builder {
			b := NewBuilder(2)
			b.AddArc(0, 1, 10, -1)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.build().Build(); err == nil {
				t.Errorf("Build accepted invalid graph")
			}
		})
	}
}

func TestAdjacencyConsistent(t *testing.T) {
	g := ring(5)
	for v := 0; v < g.NumNodes(); v++ {
		for _, li := range g.OutLinks(v) {
			if g.Link(int(li)).From != v {
				t.Errorf("out-link %d of node %d has From=%d", li, v, g.Link(int(li)).From)
			}
		}
		for _, li := range g.InLinks(v) {
			if g.Link(int(li)).To != v {
				t.Errorf("in-link %d of node %d has To=%d", li, v, g.Link(int(li)).To)
			}
		}
		if g.OutDegree(v) != 2 {
			t.Errorf("ring out-degree of %d = %d, want 2", v, g.OutDegree(v))
		}
	}
}

func TestUndirectedEdges(t *testing.T) {
	g := ring(6)
	edges := g.UndirectedEdges()
	if len(edges) != 6 {
		t.Fatalf("UndirectedEdges len = %d, want 6", len(edges))
	}
	seen := map[int]bool{}
	for _, e := range edges {
		l := g.Link(e)
		if l.Reverse >= 0 && e > l.Reverse {
			t.Errorf("edge %d is not the lower index of its pair", e)
		}
		if seen[e] {
			t.Errorf("duplicate edge %d", e)
		}
		seen[e] = true
	}
}

func TestStronglyConnected(t *testing.T) {
	g := ring(4)
	if !g.IsStronglyConnected(nil) {
		t.Error("ring should be strongly connected")
	}
	// A one-directional chain is not strongly connected.
	b := NewBuilder(3)
	b.AddArc(0, 1, 10, 1)
	b.AddArc(1, 2, 10, 1)
	chain := b.MustBuild()
	if chain.IsStronglyConnected(nil) {
		t.Error("directed chain should not be strongly connected")
	}
}

func TestConnectivityUnderMask(t *testing.T) {
	g := ring(4)
	m := NewMask(g)
	// A ring survives any single undirected edge failure.
	m.FailLinkBoth(0)
	if !g.IsStronglyConnected(m) {
		t.Error("ring minus one edge should stay strongly connected")
	}
	// Failing two edges incident to the same node isolates it.
	m.Reset()
	v := g.Link(0).From
	for _, li := range g.OutLinks(v) {
		m.FailLinkBoth(int(li))
	}
	if g.IsStronglyConnected(m) {
		t.Error("isolating a node must break strong connectivity")
	}
	if got := g.ReachableFrom((v+1)%4, m); got != 3 {
		t.Errorf("ReachableFrom = %d, want 3", got)
	}
}

func TestMaskNodeFailureKillsIncidentLinks(t *testing.T) {
	g := ring(4)
	m := NewMask(g)
	m.FailNode(2)
	for li := 0; li < g.NumLinks(); li++ {
		l := g.Link(li)
		touches := l.From == 2 || l.To == 2
		if touches && m.LinkAlive(li) {
			t.Errorf("link %d touches dead node but is alive", li)
		}
		if !touches && !m.LinkAlive(li) {
			t.Errorf("link %d does not touch dead node but is dead", li)
		}
	}
	if m.NodeAlive(2) {
		t.Error("failed node reported alive")
	}
}

func TestNilMaskIsAllAlive(t *testing.T) {
	var m *Mask
	if !m.NodeAlive(0) || !m.LinkAlive(0) {
		t.Error("nil mask must report everything alive")
	}
	if m.AnyFailure() {
		t.Error("nil mask must report no failures")
	}
	m.Reset() // must not panic
}

func TestMaskResetRevives(t *testing.T) {
	g := ring(3)
	m := NewMask(g)
	m.FailLink(1)
	m.FailNode(0)
	if !m.AnyFailure() {
		t.Fatal("expected failures before reset")
	}
	m.Reset()
	if m.AnyFailure() {
		t.Error("reset should revive everything")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.SetNodeName(0, "nyc")
	b.SetNodeCoord(0, Coord{X: 0.1, Y: 0.9})
	b.AddEdge(0, 1, 500, 5)
	b.AddEdge(1, 2, 200, 7.25)
	b.AddArc(2, 3, 100, 3)
	b.AddArc(3, 0, 100, 3)
	g := b.MustBuild()

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
		t.Fatalf("size mismatch after round trip")
	}
	for i := 0; i < g.NumLinks(); i++ {
		if g.Link(i) != back.Link(i) {
			t.Errorf("link %d mismatch: %+v vs %+v", i, g.Link(i), back.Link(i))
		}
	}
	if back.NodeName(0) != "nyc" {
		t.Errorf("name lost: %q", back.NodeName(0))
	}
	if c, ok := back.NodeCoord(0); !ok || c != (Coord{X: 0.1, Y: 0.9}) {
		t.Errorf("coord lost: %v %v", c, ok)
	}
	// Adjacency must have been rebuilt.
	if back.OutDegree(0) != g.OutDegree(0) {
		t.Errorf("adjacency not rebuilt: deg %d vs %d", back.OutDegree(0), g.OutDegree(0))
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":2,"links":[{"from":0,"to":9,"capacity":1,"delay":1,"reverse":-1}]}`), &g); err == nil {
		t.Error("unmarshal accepted out-of-range link")
	}
	if err := json.Unmarshal([]byte(`not json`), &g); err == nil {
		t.Error("unmarshal accepted garbage")
	}
}

// randomConnectedGraph builds a random graph guaranteed strongly
// connected by first laying down a ring.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 100+rng.Float64()*400, 1+rng.Float64()*19)
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(u, v, 100+rng.Float64()*400, 1+rng.Float64()*19)
		}
	}
	return b.MustBuild()
}

func TestQuickJSONRoundTripPreservesLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 3+r.Intn(10), r.Intn(12))
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.NumLinks() != g.NumLinks() || back.NumNodes() != g.NumNodes() {
			return false
		}
		for i := range g.Links() {
			if g.Link(i) != back.Link(i) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAdjacencySumsMatchLinkCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(r, 3+r.Intn(15), r.Intn(20))
		var outSum, inSum int
		for v := 0; v < g.NumNodes(); v++ {
			outSum += len(g.OutLinks(v))
			inSum += len(g.InLinks(v))
		}
		return outSum == g.NumLinks() && inSum == g.NumLinks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMeanOutDegreeAndCapacity(t *testing.T) {
	g := ring(4) // 8 links of 500 Mbps
	if got := g.MeanOutDegree(); got != 2 {
		t.Errorf("MeanOutDegree = %g, want 2", got)
	}
	if got := g.TotalCapacity(); got != 8*500 {
		t.Errorf("TotalCapacity = %g, want 4000", got)
	}
	if got := g.MaxPropDelay(); got != 5 {
		t.Errorf("MaxPropDelay = %g, want 5", got)
	}
}

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(3)
	b.SetNodeName(0, "a")
	b.AddEdge(0, 1, 500, 5)
	b.AddArc(1, 2, 500, 2.5)
	g := b.MustBuild()
	var buf strings.Builder
	if err := g.WriteDOT(&buf, "test", map[int]bool{0: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "test"`, `label="a"`, "0 -- 1", "1 -- 2", "dir=forward", "color=red", "5.0ms", "2.5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Each undirected pair drawn exactly once; the one-way link once more.
	if strings.Count(out, " -- ") != 2 {
		t.Errorf("expected exactly two edge statements, got:\n%s", out)
	}
	// Undirected graph blocks must never contain directed edge syntax.
	if strings.Contains(out, "->") {
		t.Errorf("DOT graph block contains -> edge:\n%s", out)
	}
}
