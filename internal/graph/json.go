package graph

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the serialized form of a Graph. Reverse pairing is
// reconstructed from the link list, so the format stores only the
// physical fields.
type jsonGraph struct {
	Nodes  int        `json:"nodes"`
	Links  []jsonLink `json:"links"`
	Names  []string   `json:"names,omitempty"`
	Coords []Coord    `json:"coords,omitempty"`
}

type jsonLink struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Capacity float64 `json:"capacity"`
	Delay    float64 `json:"delay"`
	Reverse  int     `json:"reverse"`
}

// MarshalJSON encodes the graph in a stable, self-contained format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.n, Names: g.names, Coords: g.coords}
	jg.Links = make([]jsonLink, len(g.links))
	for i, l := range g.links {
		jg.Links[i] = jsonLink{From: l.From, To: l.To, Capacity: l.Capacity, Delay: l.Delay, Reverse: l.Reverse}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph and re-validates its invariants.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	ng := Graph{n: jg.Nodes, names: jg.Names, coords: jg.Coords}
	ng.links = make([]Link, len(jg.Links))
	for i, l := range jg.Links {
		ng.links[i] = Link{From: l.From, To: l.To, Capacity: l.Capacity, Delay: l.Delay, Reverse: l.Reverse}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	ng.buildAdjacency()
	*g = ng
	return nil
}
