package graph

// Mask captures a failure scenario over a graph: any combination of dead
// links and dead nodes. A nil *Mask means "everything alive"; all Mask
// methods are safe on a nil receiver.
//
// Masks are cheap to reset and reuse, so evaluation loops can keep one
// per worker rather than allocating per scenario.
type Mask struct {
	deadLinks []bool
	deadNodes []bool
	// from/to alias the graph's shared endpoint arrays so the hot
	// LinkAlive check avoids copying whole Link structs.
	from, to []int32
	g        *Graph
}

// NewMask returns an all-alive mask for g.
func NewMask(g *Graph) *Mask {
	return &Mask{
		deadLinks: make([]bool, g.NumLinks()),
		deadNodes: make([]bool, g.NumNodes()),
		from:      g.from,
		to:        g.to,
		g:         g,
	}
}

// Reset revives all links and nodes.
func (m *Mask) Reset() {
	if m == nil {
		return
	}
	clear(m.deadLinks)
	clear(m.deadNodes)
}

// LinkAlive reports whether link li is up, accounting for the liveness of
// its endpoints.
func (m *Mask) LinkAlive(li int) bool {
	if m == nil {
		return true
	}
	return !m.deadLinks[li] && !m.deadNodes[m.from[li]] && !m.deadNodes[m.to[li]]
}

// NodeAlive reports whether node v is up.
func (m *Mask) NodeAlive(v int) bool {
	return m == nil || !m.deadNodes[v]
}

// FailLink marks the directed link li as down.
func (m *Mask) FailLink(li int) { m.deadLinks[li] = true }

// FailLinkBoth marks link li and its reverse (if paired) as down,
// modeling a physical (fiber-cut) failure.
func (m *Mask) FailLinkBoth(li int) {
	m.deadLinks[li] = true
	if r := m.g.Link(li).Reverse; r >= 0 {
		m.deadLinks[r] = true
	}
}

// FailNode marks node v as down. All incident links become dead through
// LinkAlive's endpoint check.
func (m *Mask) FailNode(v int) { m.deadNodes[v] = true }

// ReviveLink clears the link-down mark of li. The link becomes alive
// again unless an endpoint node is down.
func (m *Mask) ReviveLink(li int) { m.deadLinks[li] = false }

// LinkFailed reports whether link li itself is marked down. Unlike
// LinkAlive it ignores the liveness of the endpoints, so toggling code
// (link-down / link-up event streams) can track the link's own state
// independently of node failures.
func (m *Mask) LinkFailed(li int) bool {
	return m != nil && m.deadLinks[li]
}

// AnyFailure reports whether the mask differs from the all-alive state.
func (m *Mask) AnyFailure() bool {
	if m == nil {
		return false
	}
	for _, d := range m.deadLinks {
		if d {
			return true
		}
	}
	for _, d := range m.deadNodes {
		if d {
			return true
		}
	}
	return false
}
