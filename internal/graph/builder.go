package graph

import "fmt"

// Builder assembles a Graph incrementally. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	n      int
	links  []Link
	names  []string
	coords []Coord
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// NumLinks returns the number of directed links added so far.
func (b *Builder) NumLinks() int { return len(b.links) }

// SetNodeName records a display name for node v.
func (b *Builder) SetNodeName(v int, name string) {
	if b.names == nil {
		b.names = make([]string, b.n)
	}
	b.names[v] = name
}

// SetNodeCoord records a planar position for node v.
func (b *Builder) SetNodeCoord(v int, c Coord) {
	if b.coords == nil {
		b.coords = make([]Coord, b.n)
	}
	b.coords[v] = c
}

// AddArc adds a single directed link and returns its index.
func (b *Builder) AddArc(from, to int, capacity, delay float64) int {
	b.links = append(b.links, Link{From: from, To: to, Capacity: capacity, Delay: delay, Reverse: -1})
	return len(b.links) - 1
}

// AddEdge adds a reverse-paired pair of directed links (one per
// direction) with identical capacity and delay, and returns their
// indices.
func (b *Builder) AddEdge(u, v int, capacity, delay float64) (fwd, rev int) {
	fwd = b.AddArc(u, v, capacity, delay)
	rev = b.AddArc(v, u, capacity, delay)
	b.links[fwd].Reverse = rev
	b.links[rev].Reverse = fwd
	return fwd, rev
}

// HasEdge reports whether any link (in either direction) already exists
// between u and v. It is O(links) and intended for construction-time use.
func (b *Builder) HasEdge(u, v int) bool {
	for _, l := range b.links {
		if (l.From == u && l.To == v) || (l.From == v && l.To == u) {
			return true
		}
	}
	return false
}

// Build finalizes the graph, computing adjacency arrays and validating
// invariants.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{
		n:      b.n,
		links:  append([]Link(nil), b.links...),
		names:  b.names,
		coords: b.coords,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.buildAdjacency()
	return g, nil
}

// MustBuild is Build that panics on error, for use with generators whose
// construction is correct by design.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("graph: MustBuild: %v", err))
	}
	return g
}

func (g *Graph) buildAdjacency() {
	outDeg := make([]int, g.n)
	inDeg := make([]int, g.n)
	for _, l := range g.links {
		outDeg[l.From]++
		inDeg[l.To]++
	}
	// Single backing arrays keep adjacency lists cache-friendly.
	outBack := make([]int32, len(g.links))
	inBack := make([]int32, len(g.links))
	g.out = make([][]int32, g.n)
	g.in = make([][]int32, g.n)
	var o, i int
	for v := 0; v < g.n; v++ {
		g.out[v] = outBack[o : o : o+outDeg[v]]
		o += outDeg[v]
		g.in[v] = inBack[i : i : i+inDeg[v]]
		i += inDeg[v]
	}
	for li, l := range g.links {
		g.out[l.From] = append(g.out[l.From], int32(li))
		g.in[l.To] = append(g.in[l.To], int32(li))
	}
	g.from = make([]int32, len(g.links))
	g.to = make([]int32, len(g.links))
	for li, l := range g.links {
		g.from[li], g.to[li] = int32(l.From), int32(l.To)
	}
}
