package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format, one undirected edge
// per reverse-paired link (unpaired links are drawn directed). Link
// labels show propagation delay in ms. The optional highlight set marks
// links (by index; either direction of a pair) to draw emphasized —
// e.g. a critical link set.
func (g *Graph) WriteDOT(w io.Writer, name string, highlight map[int]bool) error {
	if name == "" {
		name = "network"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [shape=circle fontsize=10];\n")
	b.WriteString("  edge [fontsize=8];\n")
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %d [label=%q];\n", v, g.NodeName(v))
	}
	for li, l := range g.links {
		if l.Reverse >= 0 && li > l.Reverse {
			continue // draw each pair once
		}
		attrs := fmt.Sprintf("label=\"%.1fms\"", l.Delay)
		if highlight != nil && (highlight[li] || (l.Reverse >= 0 && highlight[l.Reverse])) {
			attrs += " color=red penwidth=2"
		}
		if l.Reverse < 0 {
			// An undirected "graph" block only accepts "--" edges; mark
			// one-way links with an explicit direction attribute instead.
			attrs += " dir=forward"
		}
		fmt.Fprintf(&b, "  %d -- %d [%s];\n", l.From, l.To, attrs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
