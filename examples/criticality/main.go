// Critical-link inspection: which links actually matter for robustness?
//
// The paper's key computational idea is that only a small subset of
// links is critical — optimizing against just their failures nearly
// matches optimizing against all of them. This example surfaces that
// subset for a power-law topology (where hubs concentrate criticality)
// and shows the per-class criticality scores behind the selection.
//
// Run with: go run ./examples/criticality
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:     "pl", // Barabási–Albert: hubs and spokes
		Nodes:        30,
		EdgesPerNode: 3,
		AvgUtil:      0.43,
		SLABoundMs:   25,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Optimize(repro.OptimizeOptions{
		Budget:           "quick",
		CriticalFraction: 0.15,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("power-law topology: %d nodes, %d links\n", net.Nodes(), net.Links())
	fmt.Printf("criticality rankings converged: %v\n", res.Converged)
	fmt.Printf("critical set: %d links (%.0f%% of the network)\n\n",
		len(res.CriticalLinks), 100*float64(len(res.CriticalLinks))/float64(net.Links()))

	type scored struct {
		link  int
		total float64
	}
	ranked := make([]scored, 0, len(res.CriticalLinks))
	for _, l := range res.CriticalLinks {
		ranked = append(ranked, scored{l, res.CriticalityLambda[l] + res.CriticalityPhi[l]})
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].total > ranked[b].total })

	fmt.Println("critical links by combined normalized criticality:")
	fmt.Println("  link  endpoints        rho_lambda  rho_phi")
	for _, s := range ranked {
		li := net.Link(s.link)
		fmt.Printf("  %4d  %-6s -> %-6s  %10.4f  %7.4f\n",
			s.link, li.From, li.To, res.CriticalityLambda[s.link], res.CriticalityPhi[s.link])
	}

	// Sanity check the selection: failing a critical link should hurt at
	// least as much, on average, as failing a random non-critical one.
	inCrit := map[int]bool{}
	for _, l := range res.CriticalLinks {
		inCrit[l] = true
	}
	var critViol, otherViol, critN, otherN float64
	report := res.Regular.EvaluateAllLinkFailures()
	for l, e := range report.PerScenario {
		if inCrit[l] {
			critViol += float64(e.SLAViolations)
			critN++
		} else {
			otherViol += float64(e.SLAViolations)
			otherN++
		}
	}
	fmt.Printf("\nunder the regular routing, failing a critical link costs %.2f violations\n", critViol/critN)
	fmt.Printf("on average, versus %.2f for the remaining links\n", otherViol/otherN)
}
