// Fleet tour: two networks, one control plane. This example builds two
// independent networks ("east" and "west"), each with its own scenario
// day and configuration library, and serves both from a single sharded
// Fleet with durable checkpointing. Each network's day replays through
// its own shard — telemetry routes by network name, advice and staged
// migrations run per shard, and neither network's stress ever touches
// the other.
//
// Halfway through, the west shard is checkpointed and then killed — a
// forced restore drill, exactly what a delivery panic triggers. The
// shard rebuilds from its snapshot plus the write-ahead event log and
// the replay continues as if nothing happened: the restored controller
// is bit-identical to one that never crashed, so the day's outcome is
// unchanged. The east shard never notices.
//
// Run with: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

type site struct {
	name string
	day  *repro.ScenarioSet
}

func main() {
	dir, err := os.MkdirTemp("", "fleet-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Two networks with different topologies, traffic and scenario days;
	// each gets its own clustered configuration library.
	var members []repro.FleetMember
	var sites []site
	for i, name := range []string{"east", "west"} {
		seed := int64(21 + 10*i)
		net, err := repro.NewNetwork(repro.NetworkSpec{
			Topology:   "rand",
			Nodes:      16,
			Links:      72,
			MaxUtil:    0.78,
			SLABoundMs: 25,
			Seed:       seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		day, err := net.MergeScenarios("failure+surge day",
			net.DualLinkFailureScenarios(6, seed+1),
			net.HotspotSurgeScenarios(true, 3, seed+2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: building a 3-configuration library over %d scenarios...\n", name, day.Size())
		lib, err := net.BuildLibrary(day, repro.LibraryOptions{Size: 3, Budget: "quick", Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, repro.FleetMember{Name: name, Net: net, Library: lib})
		sites = append(sites, site{name: name, day: day})
	}

	fleet, err := repro.NewFleet(members, repro.FleetOptions{CheckpointDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close(context.Background())

	const maxChanges = 5
	fmt.Printf("\nreplaying both days through one fleet (migration budget %d changes per stage):\n\n", maxChanges)
	fmt.Printf("  %-8s %-26s %-8s %10s %8s\n", "network", "episode", "advised", "violations", "changes")

	episodes := sites[0].day.Size() // both days are the same length
	changesBy := map[string]int{}
	for i := 0; i < episodes; i++ {
		if i == episodes/3 {
			// Commit west's state; events admitted after this land in the
			// write-ahead log only, until the next checkpoint.
			if err := fleet.Checkpoint("west"); err != nil {
				log.Fatal(err)
			}
		}
		if i == 2*episodes/3 {
			// The restore drill: kill west's controller. Kill rebuilds
			// synchronously from the snapshot plus the log tail written
			// since the checkpoint; east keeps serving throughout.
			if err := fleet.Kill("west"); err != nil {
				log.Fatal(err)
			}
			st := fleet.FleetState()
			for _, sh := range st.Shards {
				if sh.Network == "west" {
					fmt.Printf("\n  -- killed west mid-day: restored from checkpoint + %d logged events, east untouched --\n\n", sh.Replayed)
				}
			}
		}
		for _, s := range sites {
			if err := fleet.ReplayEpisode(s.name, s.day, i, true); err != nil {
				log.Fatal(err)
			}
			adv, err := fleet.Advise(s.name)
			if err != nil {
				log.Fatal(err)
			}
			changes := 0
			if adv.ShouldSwitch {
				for {
					plan, err := fleet.Plan(s.name, adv.Config, maxChanges)
					if err != nil {
						log.Fatal(err)
					}
					if err := fleet.Apply(s.name, plan); err != nil {
						log.Fatal(err)
					}
					changes += len(plan.Steps)
					if plan.Complete || len(plan.Steps) == 0 {
						break
					}
				}
			}
			cs, err := fleet.State(s.name)
			if err != nil {
				log.Fatal(err)
			}
			changesBy[s.name] += changes
			if changes > 0 || cs.Deployed.SLAViolations > 0 {
				fmt.Printf("  %-8s %-26s %-8s %10d %8d\n",
					s.name, s.day.ScenarioNames()[i], adv.Name, cs.Deployed.SLAViolations, changes)
			}
			if err := fleet.ReplayEpisode(s.name, s.day, i, false); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The aggregated view /fleet/state serves, here straight off the
	// facade: per-shard lifecycle plus fleet totals.
	st := fleet.FleetState()
	fmt.Println()
	for _, sh := range st.Shards {
		fmt.Printf("%s: state=%s seq=%d crashes=%d checkpoints=%d weight changes=%d\n",
			sh.Network, sh.State, sh.Seq, sh.Crashes, sh.Checkpoints, changesBy[sh.Network])
	}
	fmt.Printf("fleet totals: accepted=%d delivered=%d crashes=%d checkpoints=%d\n",
		st.TotalAccepted, st.TotalDelivered, st.TotalCrashes, st.TotalCheckpoints)
	fmt.Println()
	fmt.Println("one process, two isolated control planes: telemetry routes by network,")
	fmt.Println("shards crash and restore independently, and the write-ahead checkpoint")
	fmt.Println("makes a restored controller bit-identical to one that never failed.")
}
