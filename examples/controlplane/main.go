// Control-plane tour: a day of failures and traffic surges, served
// online. This example builds a network, precomputes a configuration
// library by clustering the scenario space and optimizing one robust
// routing per cluster, then replays the day as a telemetry stream
// through a Controller: every episode's events re-score all
// configurations incrementally, the controller advises the best one,
// and switches happen through bounded-change migration plans whose
// every intermediate step is loop-free and SLA-checked.
//
// The punchline is the comparison at the bottom: a single static
// routing versus the library under the same day — flexibility (a few
// weight changes at the right moments) buys violations a fixed
// configuration cannot avoid.
//
// This tour drives one network; examples/fleet runs the same loop
// across several networks at once through the sharded Fleet facade.
//
// Run with: go run ./examples/controlplane
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "rand",
		Nodes:      20,
		Links:      100,
		MaxUtil:    0.78,
		SLABoundMs: 25,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The scenario day: dual-link outages, hot-spot surges, and a few
	// single-link failures.
	day, err := net.MergeScenarios("failure+surge day",
		net.DualLinkFailureScenarios(10, 5),
		net.HotspotSurgeScenarios(true, 5, 6),
		net.SingleLinkFailureScenarios())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("building a 4-configuration library over %d scenarios...\n", day.Size())
	lib, err := net.BuildLibrary(day, repro.LibraryOptions{Size: 4, Budget: "quick", Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %v\n\n", lib.Names())

	ctrl, err := net.NewController(lib)
	if err != nil {
		log.Fatal(err)
	}
	static, err := lib.Routing(ctrl.State().Active) // the best config on the intact network
	if err != nil {
		log.Fatal(err)
	}

	// The static baseline's per-episode violations, scored once offline
	// by the scenario engine.
	staticRep, err := net.RunScenarios(day, static)
	if err != nil {
		log.Fatal(err)
	}

	const maxChanges = 6
	fmt.Printf("replaying the day (migration budget %d weight changes per stage):\n\n", maxChanges)
	fmt.Printf("  %-26s %-8s %10s %10s %8s\n", "episode", "advised", "static", "adaptive", "changes")

	names := day.ScenarioNames()
	staticViol, adaptiveViol, totalChanges := 0, 0, 0
	for i := 0; i < day.Size(); i++ {
		if err := ctrl.ReplayEpisode(day, i, true); err != nil {
			log.Fatal(err)
		}
		adv := ctrl.Advise()
		changes := 0
		if adv.ShouldSwitch {
			// Staged migration: apply bounded plans until complete.
			for {
				plan, err := ctrl.Plan(adv.Config, maxChanges)
				if err != nil {
					log.Fatal(err)
				}
				if err := ctrl.Apply(plan); err != nil {
					log.Fatal(err)
				}
				changes += len(plan.Steps)
				if plan.Complete || len(plan.Steps) == 0 {
					break
				}
			}
		}
		st := ctrl.State()
		staticHere := staticRep.PerScenario[i].SLAViolations
		staticViol += staticHere
		adaptiveViol += st.Deployed.SLAViolations
		totalChanges += changes
		if staticHere != st.Deployed.SLAViolations || changes > 0 {
			fmt.Printf("  %-26s %-8s %10d %10d %8d\n",
				names[i], adv.Name, staticHere, st.Deployed.SLAViolations, changes)
		}
		if err := ctrl.ReplayEpisode(day, i, false); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\nday total: static %d violations, adaptive %d violations, %d weight changes across %d episodes\n",
		staticViol, adaptiveViol, totalChanges, day.Size())
	fmt.Println()
	fmt.Println("switching among precomputed configurations — through staged migrations whose")
	fmt.Println("every step is bounded, loop-free and SLA-checked — absorbs stress no single")
	fmt.Println("configuration can: the paper's flexibility axis.")
}
