// Quickstart: build a small network, optimize it, and compare the
// regular and robust routings under normal conditions and under every
// single link failure.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 30-node random backbone at the paper's standard load, with the
	// 25 ms coast-to-coast SLA bound.
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "rand",
		Nodes:      30,
		Links:      180,
		AvgUtil:    0.43,
		SLABoundMs: 25,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links\n", net.Nodes(), net.Links())

	// Optimize: "quick" finishes in seconds; "std" in minutes and gets
	// closer to the paper's numbers.
	res, err := net.Optimize(repro.OptimizeOptions{Budget: "quick", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical links selected: %d of %d\n\n", len(res.CriticalLinks), net.Links())

	for _, sol := range []struct {
		name    string
		routing *repro.Routing
	}{
		{"regular", res.Regular},
		{"robust ", res.Robust},
	} {
		normal := sol.routing.Evaluate()
		failures := sol.routing.EvaluateAllLinkFailures()
		fmt.Printf("%s: normal violations=%d, failure avg=%.2f, worst-10%%=%.2f, throughput cost +%.1f%%\n",
			sol.name,
			normal.SLAViolations,
			failures.AvgViolations,
			failures.Top10Violations,
			100*(normal.ThroughputCost/res.Regular.Evaluate().ThroughputCost-1),
		)
	}
	fmt.Println("\nThe robust routing should show far fewer SLA violations under")
	fmt.Println("failures at a small throughput-cost premium under normal conditions.")
}
