// Traffic-uncertainty stress test: a routing is computed from an
// estimated traffic matrix, but reality drifts — measurement noise and
// flash-crowd surges. This example reproduces the spirit of the paper's
// Section V-F: a robust routing keeps its failure resilience even when
// the actual traffic deviates substantially from the matrix it was
// optimized for.
//
// Run with: go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "rand",
		Nodes:      20,
		Links:      100,
		MaxUtil:    0.74,
		SLABoundMs: 25,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Optimize(repro.OptimizeOptions{Budget: "quick", Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("failure-time SLA violations (average per single link failure):")
	fmt.Println()
	fmt.Println("  traffic scenario                regular  robust")
	show := func(name string, variant *repro.Network) {
		reg, err := res.Regular.On(variant)
		if err != nil {
			log.Fatal(err)
		}
		rob, err := res.Robust.On(variant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s  %7.2f  %6.2f\n", name,
			reg.EvaluateAllLinkFailures().AvgViolations,
			rob.EvaluateAllLinkFailures().AvgViolations)
	}

	show("estimated matrix (baseline)", net)
	// Gaussian estimation error: ±40% per pair with 95% likelihood.
	for i := int64(1); i <= 3; i++ {
		show(fmt.Sprintf("fluctuation instance %d", i), net.WithFluctuatedTraffic(0.2, 100+i))
	}
	// Download flash crowds: a few servers suddenly serve half the nodes
	// at 2-6x the planned volume.
	for i := int64(1); i <= 3; i++ {
		show(fmt.Sprintf("download hot-spot %d", i), net.WithHotspotTraffic(true, 200+i))
	}

	fmt.Println()
	fmt.Println("The robust routing's advantage persists across traffic deviations —")
	fmt.Println("robustness to failures also buys robustness to matrix error.")
}
