// Scenario-engine tour: how much punishment can an optimized routing
// absorb beyond the single-link failures it was trained on? This
// example builds a network, optimizes a regular and a robust routing,
// and stress-tests both against richer perturbation sets — sampled
// dual-link outages, shared-risk-group cuts, hot-spot traffic surges,
// and the compound case of a dual-link outage during a surge — using
// the parallel scenario runner behind Network.RunScenarios.
//
// Run with: go run ./examples/scenarios
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "rand",
		Nodes:      20,
		Links:      100,
		MaxUtil:    0.74,
		SLABoundMs: 25,
		Seed:       17,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Optimize(repro.OptimizeOptions{Budget: "quick", Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SLA violations per scenario (robust optimized for single-link failures only):")
	fmt.Println()
	fmt.Printf("  %-34s %9s  %8s %8s %8s\n", "scenario set", "scenarios", "regular", "robust", "worst(rob)")

	show := func(set *repro.ScenarioSet, network *repro.Network) {
		reg, err := res.Regular.On(network)
		if err != nil {
			log.Fatal(err)
		}
		rob, err := res.Robust.On(network)
		if err != nil {
			log.Fatal(err)
		}
		regRep, err := network.RunScenarios(set, reg)
		if err != nil {
			log.Fatal(err)
		}
		robRep, err := network.RunScenarios(set, rob)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s %9d  %8.2f %8.2f %8d\n",
			set.Name(), set.Size(), regRep.AvgViolations, robRep.AvgViolations, robRep.WorstViolations)
	}

	// The training distribution: every single link failure.
	show(net.SingleLinkFailureScenarios(), net)
	// Beyond it: sampled dual-link outages and shared-risk groups.
	show(net.DualLinkFailureScenarios(150, 99), net)
	show(net.SRLGScenarios(), net)
	// Traffic-side stress: hot-spot surges on the intact topology.
	show(net.HotspotSurgeScenarios(true, 25, 99), net)

	// Compound stress: rebind both routings onto a surged copy of the
	// network and replay the dual-link outages under it.
	surged := net.WithHotspotTraffic(true, 99)
	merged, err := surged.MergeScenarios("dual-link during surge",
		surged.DualLinkFailureScenarios(150, 99))
	if err != nil {
		log.Fatal(err)
	}
	show(merged, surged)

	fmt.Println()
	fmt.Println("the single-link-trained robust routing keeps its margin on scenario")
	fmt.Println("families it never saw — the paper's robustness generalizes.")
}
