// SLA routing on a real backbone: the workload the paper's introduction
// motivates — VoIP-style delay-sensitive traffic sharing a 16-city North
// American ISP backbone with bulk TCP traffic.
//
// The example shows per-failure detail: which single link failures break
// the 25 ms SLA under a performance-only routing, and how the robust
// routing removes almost all of them.
//
// Run with: go run ./examples/slarouting
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "isp",
		MaxUtil:    0.74, // a moderately hot backbone
		SLABoundMs: 25,   // US coast-to-coast VoIP budget
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISP backbone: %d PoPs, %d directed links, SLA %g ms\n\n",
		net.Nodes(), net.Links(), net.SLABoundMs())

	res, err := net.Optimize(repro.OptimizeOptions{Budget: "quick", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	type failure struct {
		link    int
		regular int
		robust  int
	}
	regularReport := res.Regular.EvaluateAllLinkFailures()
	robustReport := res.Robust.EvaluateAllLinkFailures()
	var failures []failure
	for l := 0; l < net.Links(); l++ {
		failures = append(failures, failure{
			link:    l,
			regular: regularReport.PerScenario[l].SLAViolations,
			robust:  robustReport.PerScenario[l].SLAViolations,
		})
	}
	sort.Slice(failures, func(a, b int) bool { return failures[a].regular > failures[b].regular })

	fmt.Println("worst link failures (by SLA violations under the regular routing):")
	fmt.Println("  failed link                     regular  robust")
	for _, f := range failures[:8] {
		li := net.Link(f.link)
		fmt.Printf("  %-13s -> %-13s  %7d  %6d\n", li.From, li.To, f.regular, f.robust)
	}
	fmt.Printf("\naverage violations per failure: regular %.2f, robust %.2f\n",
		regularReport.AvgViolations, robustReport.AvgViolations)
	fmt.Printf("worst-10%% of failures:          regular %.2f, robust %.2f\n",
		regularReport.Top10Violations, robustReport.Top10Violations)
}
