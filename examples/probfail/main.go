// Probabilistic failure model: the extension sketched in the paper's
// conclusion. Real links do not fail uniformly — long-haul spans get cut
// far more often than intra-PoP links. This example assigns each link a
// failure probability proportional to its propagation delay (a standard
// proxy: fiber cut rates grow with span length), optimizes routing for
// the *expected* failure cost, and compares it against the uniform
// robust routing on the failures that actually matter.
//
// Run with: go run ./examples/probfail
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	net, err := repro.NewNetwork(repro.NetworkSpec{
		Topology:   "rand",
		Nodes:      20,
		Links:      100,
		AvgUtil:    0.43,
		SLABoundMs: 25,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A handful of long-haul spans carry almost all of the failure
	// mass (fiber cuts happen in the field, not inside PoPs): the
	// longest 10% of links fail with probability 1 relative to 0.02 for
	// the short ones.
	probs := make([]float64, net.Links())
	delays := make([]float64, net.Links())
	for l := 0; l < net.Links(); l++ {
		delays[l] = net.Link(l).PropDelayMs
	}
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	cutoff := sorted[len(sorted)*9/10]
	for l := 0; l < net.Links(); l++ {
		if delays[l] >= cutoff {
			probs[l] = 1
		} else {
			probs[l] = 0.02
		}
	}

	uniform, err := net.Optimize(repro.OptimizeOptions{Budget: "std", Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := net.Optimize(repro.OptimizeOptions{
		Budget: "std", Seed: 5, LinkFailureProbs: probs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Score both solutions by probability-weighted expected violations.
	expected := func(r *repro.Routing) float64 {
		report := r.EvaluateAllLinkFailures()
		var sum, mass float64
		for l, e := range report.PerScenario {
			sum += probs[l] * float64(e.SLAViolations)
			mass += probs[l]
		}
		return sum / mass
	}

	fmt.Printf("network: %d nodes, %d links; failure probability ∝ span length\n\n", net.Nodes(), net.Links())
	fmt.Printf("expected SLA violations per failure (probability-weighted):\n")
	fmt.Printf("  regular (no robustness):        %.2f\n", expected(uniform.Regular))
	fmt.Printf("  robust, uniform failure model:  %.2f\n", expected(uniform.Robust))
	fmt.Printf("  robust, probabilistic model:    %.2f\n", expected(weighted.Robust))
	fmt.Printf("\ncritical links: uniform model %d, probabilistic model %d\n",
		len(uniform.CriticalLinks), len(weighted.CriticalLinks))
	fmt.Println("\nThe probabilistic model focuses its critical set — and its")
	fmt.Println("robustness budget — on the links that actually fail.")
}
